#include "core/instance_store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "core/cost_model.hpp"
#include "core/instance_io.hpp"

namespace dlb::core {

namespace {

// ----- on-disk layout -----

constexpr std::size_t kHeaderBytes = 4096;  // one page
constexpr std::size_t kSectionAlign = 64;   // cache line

constexpr std::uint32_t kFlagTypes = 1u << 0;
constexpr std::uint32_t kFlagCostModel = 1u << 1;
constexpr std::uint32_t kFlagAssignment = 1u << 2;
constexpr std::uint32_t kKnownFlags =
    kFlagTypes | kFlagCostModel | kFlagAssignment;

struct DlbiHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t num_machines;
  std::uint64_t num_groups;
  std::uint64_t num_jobs;
  std::uint64_t num_job_types;
  double max_cost;      // cache: skips the O(groups * jobs) scan on open
  std::uint32_t unit_scales;
  std::uint32_t reserved;
  std::uint64_t off_group_of;    // u32[num_machines]
  std::uint64_t off_scales;      // f64[num_machines]
  std::uint64_t off_types;       // u32[num_jobs], 0 unless kFlagTypes
  std::uint64_t off_costmodel;   // DlbiDist[num_jobs], 0 unless kFlagCostModel
  std::uint64_t off_costs;       // f64[num_groups * num_jobs], row-major
  std::uint64_t off_assignment;  // u32[num_jobs], 0 unless kFlagAssignment
  std::uint64_t file_size;
};
static_assert(sizeof(DlbiHeader) == 120, "on-disk header layout drifted");

/// One cost-model distribution, bit-exact against cost::Dist.
struct DlbiDist {
  std::uint32_t kind;
  std::uint32_t reserved;
  double value;
  double sigma;
  double alpha;
  double lo;
  double hi;
};
static_assert(sizeof(DlbiDist) == 48, "on-disk dist layout drifted");

[[nodiscard]] std::size_t align_up(std::size_t v) noexcept {
  return (v + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
}

[[noreturn]] void fail(const std::string& message) {
  throw std::runtime_error("instance_store: " + message);
}

/// Escapes leading file bytes for an unknown-format error message.
[[nodiscard]] std::string printable_magic(std::string_view bytes) {
  std::string out;
  for (char c : bytes) {
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(c);
    } else {
      static const char* hex = "0123456789abcdef";
      out += "\\x";
      out.push_back(hex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
      out.push_back(hex[static_cast<unsigned char>(c) & 0xf]);
    }
  }
  return out;
}

void write_bytes(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
}

/// Pads the stream with zero bytes from `at` to `target`; returns `target`.
std::size_t pad_to(std::ofstream& out, std::size_t at, std::size_t target) {
  static constexpr char zeros[kSectionAlign] = {};
  while (at < target) {
    const std::size_t chunk = std::min(target - at, sizeof(zeros));
    write_bytes(out, zeros, chunk);
    at += chunk;
  }
  return at;
}

/// Streams `count` elements produced by `fn(index)` in bounded chunks, so
/// writing a 100M-job section never materializes a second full-size array.
template <typename T, typename Fn>
void write_elements(std::ofstream& out, std::size_t count, Fn&& fn) {
  constexpr std::size_t kChunk = std::size_t{1} << 20;
  std::vector<T> buffer(std::min(count, kChunk));
  std::size_t done = 0;
  while (done < count) {
    const std::size_t batch = std::min(count - done, kChunk);
    for (std::size_t k = 0; k < batch; ++k) buffer[k] = fn(done + k);
    write_bytes(out, buffer.data(), batch * sizeof(T));
    done += batch;
  }
}

[[nodiscard]] const void* section(const std::byte* base, std::uint64_t off) {
  return base + off;
}

void check_section(const DlbiHeader& header, std::uint64_t off,
                   std::size_t bytes, const std::string& name) {
  if (off == 0 || off % kSectionAlign != 0 || off < kHeaderBytes ||
      off + bytes > header.file_size) {
    fail("corrupt header: section '" + name + "' out of bounds");
  }
}

}  // namespace

struct InstanceStore::Mapping {
  int fd = -1;
  void* data = MAP_FAILED;
  std::size_t size = 0;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (data != MAP_FAILED) ::munmap(data, size);
    if (fd >= 0) ::close(fd);
  }
};

void save_dlbi(const Instance& instance, const std::string& path,
               const Assignment* initial) {
  const std::size_t m = instance.num_machines();
  const std::size_t g = instance.num_groups();
  const std::size_t n = instance.num_jobs();
  if (initial != nullptr && initial->num_jobs() != n) {
    fail("save_dlbi: assignment has " + std::to_string(initial->num_jobs()) +
         " jobs, instance has " + std::to_string(n));
  }

  DlbiHeader header{};
  std::memcpy(header.magic, kDlbiMagic.data(), kDlbiMagic.size());
  header.version = kDlbiVersion;
  header.num_machines = m;
  header.num_groups = g;
  header.num_jobs = n;
  header.num_job_types = instance.num_job_types();
  header.max_cost = instance.max_cost();
  header.unit_scales = instance.unit_scales() ? 1 : 0;

  std::size_t off = kHeaderBytes;
  header.off_group_of = off;
  off = align_up(off + m * sizeof(std::uint32_t));
  header.off_scales = off;
  off = align_up(off + m * sizeof(double));
  if (instance.has_job_types()) {
    header.flags |= kFlagTypes;
    header.off_types = off;
    off = align_up(off + n * sizeof(std::uint32_t));
  }
  if (instance.has_cost_model()) {
    header.flags |= kFlagCostModel;
    header.off_costmodel = off;
    off = align_up(off + n * sizeof(DlbiDist));
  }
  header.off_costs = off;
  off = align_up(off + g * n * sizeof(double));
  if (initial != nullptr) {
    header.flags |= kFlagAssignment;
    header.off_assignment = off;
    off = align_up(off + n * sizeof(std::uint32_t));
  }
  header.file_size = off;

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) fail("cannot open '" + path + "' for writing");

  write_bytes(out, &header, sizeof(header));
  std::size_t at = pad_to(out, sizeof(header), header.off_group_of);
  write_elements<std::uint32_t>(
      out, m, [&](std::size_t i) {
        return instance.group_of(static_cast<MachineId>(i));
      });
  at = pad_to(out, at + m * sizeof(std::uint32_t), header.off_scales);
  write_elements<double>(out, m, [&](std::size_t i) {
    return instance.scale(static_cast<MachineId>(i));
  });
  at += m * sizeof(double);
  if (instance.has_job_types()) {
    at = pad_to(out, at, header.off_types);
    write_elements<std::uint32_t>(out, n, [&](std::size_t j) {
      return instance.job_type(static_cast<JobId>(j));
    });
    at += n * sizeof(std::uint32_t);
  }
  if (instance.has_cost_model()) {
    at = pad_to(out, at, header.off_costmodel);
    write_elements<DlbiDist>(out, n, [&](std::size_t j) {
      const cost::Dist& d = instance.cost_model().dist(static_cast<JobId>(j));
      return DlbiDist{static_cast<std::uint32_t>(d.kind), 0,
                      d.value,   d.sigma, d.alpha, d.lo, d.hi};
    });
    at += n * sizeof(DlbiDist);
  }
  at = pad_to(out, at, header.off_costs);
  for (GroupId row = 0; row < g; ++row) {
    const auto span = instance.group_row(row);
    write_bytes(out, span.data(), span.size() * sizeof(double));
  }
  at += g * n * sizeof(double);
  if (initial != nullptr) {
    at = pad_to(out, at, header.off_assignment);
    write_bytes(out, initial->raw().data(), n * sizeof(std::uint32_t));
    at += n * sizeof(std::uint32_t);
  }
  pad_to(out, at, header.file_size);

  out.flush();
  if (!out) fail("write failed for '" + path + "'");
}

void save_instance_auto(const Instance& instance, const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".dlbi") == 0) {
    save_dlbi(instance, path);
  } else {
    io::save_instance_file(instance, path);
  }
}

// Defined here, where Mapping is complete.
InstanceStore::InstanceStore(InstanceStore&&) noexcept = default;
InstanceStore& InstanceStore::operator=(InstanceStore&&) noexcept = default;
InstanceStore::~InstanceStore() = default;

InstanceStore InstanceStore::from_instance(Instance instance) {
  InstanceStore store;
  store.kind_ = StorageKind::kHeap;
  store.instance_.emplace(std::move(instance));
  return store;
}

InstanceStore InstanceStore::open(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  if (!probe) fail("cannot open '" + path + "'");
  char head[16] = {};
  probe.read(head, sizeof(head));
  const std::string_view leading(head,
                                 static_cast<std::size_t>(probe.gcount()));
  probe.close();
  if (leading.substr(0, kDlbiMagic.size()) == kDlbiMagic) {
    return open_mapped(path);
  }
  if (leading.substr(0, kTextMagic.size()) == kTextMagic) {
    InstanceStore store = from_instance(io::load_instance_file(path));
    store.path_ = path;
    return store;
  }
  fail("'" + path + "': unrecognized instance format (leading bytes \"" +
       printable_magic(leading) + "\"); valid formats: binary \"" +
       std::string(kDlbiMagic) + "\" (.dlbi) or text \"" +
       std::string(kTextMagic) + " v1\" (.inst)");
}

InstanceStore InstanceStore::open_mapped(const std::string& path) {
  auto mapping = std::make_unique<Mapping>();
  mapping->fd = ::open(path.c_str(), O_RDONLY);
  if (mapping->fd < 0) fail("cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(mapping->fd, &st) != 0) fail("cannot stat '" + path + "'");
  mapping->size = static_cast<std::size_t>(st.st_size);
  if (mapping->size < kHeaderBytes) {
    fail("'" + path + "': too small for a .dlbi header (" +
         std::to_string(mapping->size) + " bytes)");
  }
  mapping->data =
      ::mmap(nullptr, mapping->size, PROT_READ, MAP_PRIVATE, mapping->fd, 0);
  if (mapping->data == MAP_FAILED) fail("mmap failed for '" + path + "'");

  const auto* base = static_cast<const std::byte*>(mapping->data);
  DlbiHeader header;
  std::memcpy(&header, base, sizeof(header));
  if (std::string_view(header.magic, kDlbiMagic.size()) != kDlbiMagic) {
    fail("'" + path + "': bad magic \"" +
         printable_magic({header.magic, sizeof(header.magic)}) +
         "\" (expected \"" + std::string(kDlbiMagic) + "\")");
  }
  if (header.version != kDlbiVersion) {
    fail("'" + path + "': unsupported .dlbi version " +
         std::to_string(header.version) + " (supported: " +
         std::to_string(kDlbiVersion) + ")");
  }
  if ((header.flags & ~kKnownFlags) != 0) {
    fail("'" + path + "': unknown flag bits in header");
  }
  if (header.file_size != mapping->size) {
    fail("'" + path + "': header claims " + std::to_string(header.file_size) +
         " bytes, file has " + std::to_string(mapping->size));
  }
  const std::size_t m = header.num_machines;
  const std::size_t g = header.num_groups;
  const std::size_t n = header.num_jobs;
  if (m == 0 || g == 0) {
    fail("'" + path + "': need at least one machine and one group");
  }
  check_section(header, header.off_group_of, m * sizeof(std::uint32_t),
                "group_of");
  check_section(header, header.off_scales, m * sizeof(double), "scales");
  check_section(header, header.off_costs, g * n * sizeof(double), "costs");
  const JobTypeId* types = nullptr;
  if ((header.flags & kFlagTypes) != 0) {
    check_section(header, header.off_types, n * sizeof(std::uint32_t),
                  "types");
    types = static_cast<const JobTypeId*>(section(base, header.off_types));
  }

  InstanceStore store;
  store.kind_ = StorageKind::kMapped;
  store.path_ = path;
  store.instance_.emplace(Instance(
      Instance::Borrowed{},
      static_cast<const Cost*>(section(base, header.off_costs)),
      static_cast<const GroupId*>(section(base, header.off_group_of)),
      static_cast<const double*>(section(base, header.off_scales)), types, m,
      g, n, header.num_job_types, header.max_cost, header.unit_scales != 0));

  if ((header.flags & kFlagCostModel) != 0) {
    check_section(header, header.off_costmodel, n * sizeof(DlbiDist),
                  "costmodel");
    const auto* dists =
        static_cast<const DlbiDist*>(section(base, header.off_costmodel));
    std::vector<cost::Dist> parsed(n);
    for (std::size_t j = 0; j < n; ++j) {
      if (dists[j].kind > static_cast<std::uint32_t>(cost::DistKind::kPareto)) {
        fail("'" + path + "': unknown cost-model kind " +
             std::to_string(dists[j].kind) + " for job " + std::to_string(j));
      }
      parsed[j] = cost::Dist{static_cast<cost::DistKind>(dists[j].kind),
                             dists[j].value, dists[j].sigma, dists[j].alpha,
                             dists[j].lo,    dists[j].hi};
    }
    store.instance_->set_cost_model(cost::CostModel(std::move(parsed)));
  }
  if ((header.flags & kFlagAssignment) != 0) {
    check_section(header, header.off_assignment, n * sizeof(std::uint32_t),
                  "assignment");
    store.initial_ptr_ =
        static_cast<const std::uint32_t*>(section(base, header.off_assignment));
  }
  store.map_ = std::move(mapping);
  return store;
}

std::size_t InstanceStore::mapped_bytes() const noexcept {
  return map_ ? map_->size : 0;
}

bool InstanceStore::has_initial_assignment() const noexcept {
  return initial_ptr_ != nullptr;
}

Assignment InstanceStore::initial_assignment() const {
  if (initial_ptr_ == nullptr) {
    fail("'" + path_ + "': no initial assignment section");
  }
  const std::size_t n = instance_->num_jobs();
  const std::size_t m = instance_->num_machines();
  std::vector<MachineId> machine_of(initial_ptr_, initial_ptr_ + n);
  for (MachineId i : machine_of) {
    if (i != kUnassigned && i >= m) {
      fail("'" + path_ + "': assignment references unknown machine " +
           std::to_string(i));
    }
  }
  return Assignment(std::move(machine_of));
}

InstanceStore load_instance(const std::string& path) {
  return InstanceStore::open(path);
}

}  // namespace dlb::core
