#pragma once

// Schedule: an Assignment bound to its Instance with incrementally
// maintained machine loads (completion times C(i)), per-machine job lists,
// and a fingerprint for cycle detection. This is the mutable state every
// balancing kernel and simulator operates on.
//
// Storage: per-machine state lives in a LoadTable (contiguous pooled
// arrays), so moving a job is O(1) and allocation-free. Concurrency
// contract (what ParallelExchangeEngine relies on; see
// docs/parallelism.md): mutations on disjoint machine pairs may run
// concurrently — they touch disjoint LoadTable entries and disjoint
// assignment slots, while the global migration total and the
// makespan-dirty flag are relaxed atomics. makespan(), fingerprint() and
// the other whole-schedule reads must not race with any mutation.

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/assignment.hpp"
#include "core/instance.hpp"
#include "core/load_table.hpp"
#include "core/types.hpp"

namespace dlb {

class Schedule {
 public:
  /// Empty schedule (all jobs unassigned). The instance must outlive the
  /// schedule.
  explicit Schedule(const Instance& instance);

  /// Adopts an initial distribution; unassigned jobs are allowed (they
  /// simply do not contribute load) but most algorithms expect a complete
  /// assignment.
  Schedule(const Instance& instance, Assignment assignment);

  // The atomic members (migration total, makespan cache flag) are not
  // copyable by default; copies snapshot their current values.
  Schedule(const Schedule& other);
  Schedule& operator=(const Schedule& other);

  [[nodiscard]] const Instance& instance() const noexcept { return *instance_; }
  [[nodiscard]] const Assignment& assignment() const noexcept {
    return assignment_;
  }

  // ----- decision instance (risk-aware balancing, core/risk.hpp) -----
  // Kernels and selectors *reason* about the decision instance while loads
  // keep billing the real one -- the prediction/reality seam risk-aware
  // balancing plugs a risk-adjusted surrogate into. Unset means decisions
  // see the real instance. PairKernel::prepare() attaches it once per run
  // from the engine's single-threaded setup path; mutating it while
  // sessions are in flight is a race.

  /// The instance balancing decisions are made against (the attached
  /// surrogate, or instance() when none is attached).
  [[nodiscard]] const Instance& decision_instance() const noexcept {
    return decision_instance_ ? *decision_instance_ : *instance_;
  }
  [[nodiscard]] bool has_decision_instance() const noexcept {
    return decision_instance_ != nullptr;
  }
  /// Attaches (or, with null, detaches) a surrogate decision instance. It
  /// must match the real instance's machine/job shape. Attaching rebuilds
  /// the decision-load accumulators canonically (ascending job id --
  /// the same order the constructor billed the real loads in, so a
  /// surrogate whose costs are bitwise equal to the real ones yields
  /// bitwise-equal accumulators on a freshly built schedule).
  void set_decision_instance(std::shared_ptr<const Instance> surrogate);

  /// Machine i's load as the decision instance prices it. Maintained
  /// incrementally alongside the real accumulator with the identical
  /// sequence of += / -= operations, so kernels comparing decision loads
  /// stay bitwise reproducible; falls back to load(i) (the same
  /// accumulator bits the mean-based path reads) when no surrogate is
  /// attached. NOT restored by restore_loads(): a resumed run rebuilds it
  /// via PairKernel::prepare().
  [[nodiscard]] Cost decision_load(MachineId i) const noexcept {
    return decision_instance_ ? decision_loads_[i] : table_.load(i);
  }

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return table_.num_machines();
  }
  [[nodiscard]] std::size_t num_jobs() const noexcept {
    return assignment_.num_jobs();
  }

  /// Completion time C(i) = sum of p(i, j) over jobs on i.
  [[nodiscard]] Cost load(MachineId i) const noexcept {
    return table_.load(i);
  }

  /// Cmax = max_i C(i). O(m) on first call after a mutation, then cached.
  /// Whole-schedule read: never call concurrently with a mutation.
  [[nodiscard]] Cost makespan() const;

  /// Machine currently holding the makespan (smallest id on ties).
  [[nodiscard]] MachineId argmax_load() const;

  [[nodiscard]] MachineId machine_of(JobId j) const noexcept {
    return assignment_.machine_of(j);
  }

  /// Jobs on machine i, in unspecified order. The view is invalidated by
  /// any mutation touching machine i.
  [[nodiscard]] LoadTable::JobList jobs_on(MachineId i) const noexcept {
    return table_.jobs(i);
  }

  /// Places an unassigned job.
  void assign(JobId j, MachineId i);

  /// Reassigns job j to machine `to` (no-op if already there).
  void move(JobId j, MachineId to);

  /// Removes job j from its machine (becomes unassigned).
  void unassign(JobId j);

  /// Order-insensitive hash of the full assignment; equal assignments have
  /// equal fingerprints (used for cycle detection in Section VII).
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Total work currently placed: sum_i C(i).
  [[nodiscard]] Cost total_load() const noexcept;

  /// Number of effective job migrations so far: every move() that changed
  /// a job's machine (assign/unassign excluded). The decentralized setting
  /// cares about this as a proxy for network usage (the paper's conclusion
  /// singles out minimizing the number of tasks exchanged).
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_.load(std::memory_order_relaxed);
  }

  /// Migrations that delivered a job onto machine i (monotone). Disjoint
  /// pair sessions update disjoint entries; the parallel engine diffs the
  /// two machines it owns for a race-free per-session migration count.
  [[nodiscard]] std::uint64_t arrivals(MachineId i) const noexcept {
    return table_.arrivals(i);
  }

  // ----- elastic machine-set membership (src/dist/churn) -----
  // Every machine starts live; the churn runtime flips the mask as
  // machines join, drain, or crash. A dead machine must hold no jobs —
  // the churn runtime evacuates/orphans residents before flipping.

  [[nodiscard]] bool is_live(MachineId i) const noexcept {
    return table_.is_live(i);
  }
  [[nodiscard]] std::size_t num_live() const noexcept {
    return table_.num_live();
  }
  [[nodiscard]] std::span<const std::uint8_t> live_mask() const noexcept {
    return table_.live_mask();
  }
  void set_live(MachineId i, bool live) noexcept { table_.set_live(i, live); }

  /// Overwrites every per-machine load accumulator (src/dist/checkpoint
  /// restore). Incremental load sums are order-dependent in the last ulp,
  /// so bitwise-identical resumption needs the frozen accumulator bits —
  /// recomputing from the assignment is only equal up to rounding.
  void restore_loads(const std::vector<Cost>& loads);

  /// Recomputes loads from scratch and checks internal consistency.
  /// Returns true if the incremental state matches (tests use this to
  /// guard against drift; tolerance covers FP accumulation error).
  [[nodiscard]] bool check_consistency(double tol = 1e-6) const;

 private:
  void mark_dirty() noexcept {
    makespan_dirty_.store(true, std::memory_order_relaxed);
  }

  const Instance* instance_;
  std::shared_ptr<const Instance> decision_instance_;
  /// Per-machine loads in decision-instance costs; empty when no
  /// surrogate is attached. Updated in lockstep with table_'s loads.
  std::vector<Cost> decision_loads_;
  Assignment assignment_;
  LoadTable table_;
  std::atomic<std::uint64_t> migrations_{0};
  mutable Cost cached_makespan_ = 0.0;
  mutable std::atomic<bool> makespan_dirty_{true};
};

}  // namespace dlb
