#include "core/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace dlb {

namespace {

double mean_load(const Schedule& schedule) {
  return schedule.total_load() /
         static_cast<double>(schedule.num_machines());
}

}  // namespace

double imbalance_ratio(const Schedule& schedule) {
  const double mean = mean_load(schedule);
  if (!(mean > 0.0)) {
    throw std::invalid_argument("imbalance_ratio: zero total load");
  }
  return schedule.makespan() / mean;
}

double jain_fairness(const Schedule& schedule) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (MachineId i = 0; i < schedule.num_machines(); ++i) {
    const Cost load = schedule.load(i);
    sum += load;
    sum_sq += load * load;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum /
         (static_cast<double>(schedule.num_machines()) * sum_sq);
}

double load_stddev(const Schedule& schedule) {
  const double mean = mean_load(schedule);
  double variance = 0.0;
  for (MachineId i = 0; i < schedule.num_machines(); ++i) {
    const double deviation = schedule.load(i) - mean;
    variance += deviation * deviation;
  }
  variance /= static_cast<double>(schedule.num_machines());
  return std::sqrt(variance);
}

double underutilised_fraction(const Schedule& schedule, double fraction) {
  const double threshold = fraction * mean_load(schedule);
  std::size_t count = 0;
  for (MachineId i = 0; i < schedule.num_machines(); ++i) {
    if (schedule.load(i) < threshold) ++count;
  }
  return static_cast<double>(count) /
         static_cast<double>(schedule.num_machines());
}

}  // namespace dlb
