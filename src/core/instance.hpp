#pragma once

// Instance: the cost model p(i, j) of `R||Cmax` and all its sub-cases.
//
// Machines are partitioned into *groups* of identical machines and each
// machine carries a positive scale factor:
//
//     p(i, j) = group_cost[group(i)][j] * scale(i)
//
// This single representation covers every regime the paper discusses:
//   * identical machines      — one group, unit scales;
//   * heterogeneous related   — one group, per-machine scales;
//   * two clusters (CPU/GPU)  — two groups, unit scales (Sections VI-VII);
//   * fully unrelated         — one group per machine.
//
// Jobs may carry a *type* (Section V): jobs of equal type are guaranteed to
// have identical cost rows, which MJTB exploits.
//
// Storage: the group cost matrix is one flat row-major array (row = group),
// and the per-machine columns are flat arrays too. The arrays are either
// *owned* (the classic constructors, which flatten their input) or
// *borrowed* — raw pointers into an mmap'd `.dlbi` file held by a
// core::InstanceStore. Borrowing is what lets a million-machine instance
// open in O(machines) without copying the O(groups * jobs) cost matrix;
// the view must not outlive the store that maps it (a copy of a borrowed
// instance is another borrowed view of the same mapping).

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/types.hpp"

namespace dlb::core {
class InstanceStore;
}  // namespace dlb::core

namespace dlb {

class Instance {
 public:
  /// `group_costs[g]` is the cost row of group g (size = num jobs);
  /// `group_of[i]` maps machine i to its group; `scales` is optional
  /// (empty = all 1.0). Validates shape and positivity.
  Instance(std::vector<std::vector<Cost>> group_costs,
           std::vector<GroupId> group_of,
           std::vector<double> scales = {});

  // Copies rebind the flat-array pointers: an owned instance deep-copies
  // its arrays, a borrowed one stays a view into the same mapping.
  Instance(const Instance& other);
  Instance& operator=(const Instance& other);
  // Moves transfer vector buffers, so the rebound pointers stay valid.
  Instance(Instance&&) noexcept = default;
  Instance& operator=(Instance&&) noexcept = default;

  // ----- named constructors for the paper's machine regimes -----

  /// m identical machines; `job_costs[j]` is the cost of job j anywhere.
  static Instance identical(std::size_t num_machines,
                            std::vector<Cost> job_costs);

  /// Related machines: p(i, j) = base_costs[j] / speeds[i].
  static Instance related(std::vector<double> speeds,
                          std::vector<Cost> base_costs);

  /// Clustered machines: cluster g has `cluster_sizes[g]` identical
  /// machines with cost row `cluster_costs[g]`. Machines are numbered
  /// cluster by cluster.
  static Instance clustered(const std::vector<std::size_t>& cluster_sizes,
                            std::vector<std::vector<Cost>> cluster_costs);

  /// Fully unrelated: `costs[i][j]`, one group per machine.
  static Instance unrelated(std::vector<std::vector<Cost>> costs);

  // ----- shape -----

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return num_machines_;
  }
  [[nodiscard]] std::size_t num_jobs() const noexcept { return num_jobs_; }
  [[nodiscard]] std::size_t num_groups() const noexcept { return num_groups_; }

  /// True when the cost/group/scale arrays are views into storage owned
  /// elsewhere (an mmap'd core::InstanceStore) rather than this object.
  [[nodiscard]] bool is_view() const noexcept { return borrowed_; }

  // ----- costs -----

  /// Processing time of job j on machine i.
  [[nodiscard]] Cost cost(MachineId i, JobId j) const noexcept {
    return costs_[static_cast<std::size_t>(group_of_[i]) * num_jobs_ + j] *
           scales_[i];
  }

  /// Cost row of a group before per-machine scaling (the "cluster cost" the
  /// two-cluster algorithms reason about).
  [[nodiscard]] Cost group_cost(GroupId g, JobId j) const noexcept {
    return costs_[static_cast<std::size_t>(g) * num_jobs_ + j];
  }

  /// Cost row of group g as a contiguous span (size = num jobs): the
  /// SIMD-friendly bulk view the pairwise ratio-sort gathers from.
  [[nodiscard]] std::span<const Cost> group_row(GroupId g) const noexcept {
    return {costs_ + static_cast<std::size_t>(g) * num_jobs_, num_jobs_};
  }

  [[nodiscard]] GroupId group_of(MachineId i) const noexcept {
    return group_of_[i];
  }
  [[nodiscard]] double scale(MachineId i) const noexcept { return scales_[i]; }

  /// Machines belonging to group g, in increasing id order.
  [[nodiscard]] std::span<const MachineId> machines_in_group(GroupId g) const {
    return machines_by_group_[g];
  }

  /// True when every machine has scale 1 (groups are exact clusters).
  [[nodiscard]] bool unit_scales() const noexcept { return unit_scales_; }

  /// Largest cost over all (machine, job) pairs.
  [[nodiscard]] Cost max_cost() const noexcept { return max_cost_; }

  /// Cheapest execution of job j over all machines.
  [[nodiscard]] Cost min_cost_of_job(JobId j) const;

  // ----- job types (Section V) -----

  /// Declares job types. `type_of[j]` must be dense in [0, num_types).
  /// Enforces the defining property: jobs of equal type must have equal
  /// cost rows (throws std::invalid_argument otherwise).
  void set_job_types(std::vector<JobTypeId> type_of);

  /// Infers job types by grouping jobs with identical cost columns.
  /// Returns the number of types found.
  std::size_t infer_job_types();

  [[nodiscard]] bool has_job_types() const noexcept {
    return types_ != nullptr;
  }
  [[nodiscard]] std::size_t num_job_types() const noexcept {
    return num_job_types_;
  }
  [[nodiscard]] JobTypeId job_type(JobId j) const noexcept {
    return types_[j];
  }

  /// Total work if every job ran at its cheapest machine (a classic lower
  /// bound ingredient).
  [[nodiscard]] Cost total_min_work() const;

  // ----- stochastic job sizes (core/cost_model.hpp) -----
  // Optional: one size distribution per job, interpreting cost(i, j) as
  // the predicted mean-scale processing time. Jobs of equal type must
  // carry equal distributions (so risk-adjusting costs preserves types).

  /// Attaches per-job size distributions (size must equal num_jobs;
  /// throws std::invalid_argument on shape or type-consistency errors).
  void set_cost_model(cost::CostModel model);

  void clear_cost_model() noexcept { cost_model_.reset(); }

  [[nodiscard]] bool has_cost_model() const noexcept {
    return cost_model_.has_value();
  }
  /// Requires has_cost_model().
  [[nodiscard]] const cost::CostModel& cost_model() const noexcept {
    return *cost_model_;
  }

 private:
  friend class core::InstanceStore;

  struct Borrowed {};

  /// View constructor (core::InstanceStore::open): the arrays live in an
  /// mmap'd `.dlbi` section that outlives this object. Structural
  /// validation beyond group-id bounds happened at save time; `max_cost`
  /// and `unit_scales` come precomputed from the file header, so opening
  /// costs O(machines), never O(groups * jobs).
  Instance(Borrowed, const Cost* costs, const GroupId* group_of,
           const double* scales, const JobTypeId* types,
           std::size_t num_machines, std::size_t num_groups,
           std::size_t num_jobs, std::size_t num_job_types, Cost max_cost,
           bool unit_scales);

  void compute_caches();
  void build_machines_by_group();
  void rebind();

  // Flat storage: either owned by the vectors below or borrowed from an
  // InstanceStore mapping (owned vectors stay empty, `borrowed_` is set).
  std::vector<Cost> owned_costs_;          // [group * num_jobs + job]
  std::vector<GroupId> owned_group_of_;    // [machine]
  std::vector<double> owned_scales_;       // [machine]
  std::vector<JobTypeId> owned_types_;     // [job], empty if untyped/borrowed
  const Cost* costs_ = nullptr;
  const GroupId* group_of_ = nullptr;
  const double* scales_ = nullptr;
  const JobTypeId* types_ = nullptr;  // null if untyped
  bool borrowed_ = false;

  std::size_t num_machines_ = 0;
  std::size_t num_groups_ = 0;
  std::size_t num_jobs_ = 0;
  std::vector<std::vector<MachineId>> machines_by_group_;
  std::size_t num_job_types_ = 0;
  Cost max_cost_ = 0.0;
  bool unit_scales_ = true;
  std::optional<cost::CostModel> cost_model_;
};

}  // namespace dlb
