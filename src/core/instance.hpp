#pragma once

// Instance: the cost model p(i, j) of `R||Cmax` and all its sub-cases.
//
// Machines are partitioned into *groups* of identical machines and each
// machine carries a positive scale factor:
//
//     p(i, j) = group_cost[group(i)][j] * scale(i)
//
// This single representation covers every regime the paper discusses:
//   * identical machines      — one group, unit scales;
//   * heterogeneous related   — one group, per-machine scales;
//   * two clusters (CPU/GPU)  — two groups, unit scales (Sections VI-VII);
//   * fully unrelated         — one group per machine.
//
// Jobs may carry a *type* (Section V): jobs of equal type are guaranteed to
// have identical cost rows, which MJTB exploits.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/types.hpp"

namespace dlb {

class Instance {
 public:
  /// `group_costs[g]` is the cost row of group g (size = num jobs);
  /// `group_of[i]` maps machine i to its group; `scales` is optional
  /// (empty = all 1.0). Validates shape and positivity.
  Instance(std::vector<std::vector<Cost>> group_costs,
           std::vector<GroupId> group_of,
           std::vector<double> scales = {});

  // ----- named constructors for the paper's machine regimes -----

  /// m identical machines; `job_costs[j]` is the cost of job j anywhere.
  static Instance identical(std::size_t num_machines,
                            std::vector<Cost> job_costs);

  /// Related machines: p(i, j) = base_costs[j] / speeds[i].
  static Instance related(std::vector<double> speeds,
                          std::vector<Cost> base_costs);

  /// Clustered machines: cluster g has `cluster_sizes[g]` identical
  /// machines with cost row `cluster_costs[g]`. Machines are numbered
  /// cluster by cluster.
  static Instance clustered(const std::vector<std::size_t>& cluster_sizes,
                            std::vector<std::vector<Cost>> cluster_costs);

  /// Fully unrelated: `costs[i][j]`, one group per machine.
  static Instance unrelated(std::vector<std::vector<Cost>> costs);

  // ----- shape -----

  [[nodiscard]] std::size_t num_machines() const noexcept {
    return group_of_.size();
  }
  [[nodiscard]] std::size_t num_jobs() const noexcept { return num_jobs_; }
  [[nodiscard]] std::size_t num_groups() const noexcept {
    return group_costs_.size();
  }

  // ----- costs -----

  /// Processing time of job j on machine i.
  [[nodiscard]] Cost cost(MachineId i, JobId j) const noexcept {
    return group_costs_[group_of_[i]][j] * scales_[i];
  }

  /// Cost row of a group before per-machine scaling (the "cluster cost" the
  /// two-cluster algorithms reason about).
  [[nodiscard]] Cost group_cost(GroupId g, JobId j) const noexcept {
    return group_costs_[g][j];
  }

  [[nodiscard]] GroupId group_of(MachineId i) const noexcept {
    return group_of_[i];
  }
  [[nodiscard]] double scale(MachineId i) const noexcept { return scales_[i]; }

  /// Machines belonging to group g, in increasing id order.
  [[nodiscard]] std::span<const MachineId> machines_in_group(GroupId g) const {
    return machines_by_group_[g];
  }

  /// True when every machine has scale 1 (groups are exact clusters).
  [[nodiscard]] bool unit_scales() const noexcept { return unit_scales_; }

  /// Largest cost over all (machine, job) pairs.
  [[nodiscard]] Cost max_cost() const noexcept { return max_cost_; }

  /// Cheapest execution of job j over all machines.
  [[nodiscard]] Cost min_cost_of_job(JobId j) const;

  // ----- job types (Section V) -----

  /// Declares job types. `type_of[j]` must be dense in [0, num_types).
  /// Enforces the defining property: jobs of equal type must have equal
  /// cost rows (throws std::invalid_argument otherwise).
  void set_job_types(std::vector<JobTypeId> type_of);

  /// Infers job types by grouping jobs with identical cost columns.
  /// Returns the number of types found.
  std::size_t infer_job_types();

  [[nodiscard]] bool has_job_types() const noexcept {
    return !type_of_.empty();
  }
  [[nodiscard]] std::size_t num_job_types() const noexcept {
    return num_job_types_;
  }
  [[nodiscard]] JobTypeId job_type(JobId j) const noexcept {
    return type_of_[j];
  }

  /// Total work if every job ran at its cheapest machine (a classic lower
  /// bound ingredient).
  [[nodiscard]] Cost total_min_work() const;

  // ----- stochastic job sizes (core/cost_model.hpp) -----
  // Optional: one size distribution per job, interpreting cost(i, j) as
  // the predicted mean-scale processing time. Jobs of equal type must
  // carry equal distributions (so risk-adjusting costs preserves types).

  /// Attaches per-job size distributions (size must equal num_jobs;
  /// throws std::invalid_argument on shape or type-consistency errors).
  void set_cost_model(cost::CostModel model);

  void clear_cost_model() noexcept { cost_model_.reset(); }

  [[nodiscard]] bool has_cost_model() const noexcept {
    return cost_model_.has_value();
  }
  /// Requires has_cost_model().
  [[nodiscard]] const cost::CostModel& cost_model() const noexcept {
    return *cost_model_;
  }

 private:
  void compute_caches();

  std::size_t num_jobs_ = 0;
  std::vector<std::vector<Cost>> group_costs_;    // [group][job]
  std::vector<GroupId> group_of_;                 // [machine]
  std::vector<double> scales_;                    // [machine]
  std::vector<std::vector<MachineId>> machines_by_group_;
  std::vector<JobTypeId> type_of_;                // [job], empty if untyped
  std::size_t num_job_types_ = 0;
  Cost max_cost_ = 0.0;
  bool unit_scales_ = true;
  std::optional<cost::CostModel> cost_model_;
};

}  // namespace dlb
