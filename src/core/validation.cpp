#include "core/validation.hpp"

#include <stdexcept>

namespace dlb {

bool is_complete_partition(const Schedule& schedule, std::string* why) {
  if (!schedule.assignment().is_complete()) {
    if (why) *why = "assignment is incomplete (some job has no machine)";
    return false;
  }
  if (!schedule.check_consistency()) {
    if (why) *why = "incremental loads diverged from the assignment";
    return false;
  }
  return true;
}

void validate_complete(const Schedule& schedule) {
  std::string why;
  if (!is_complete_partition(schedule, &why)) {
    throw std::runtime_error("invalid schedule: " + why);
  }
}

double approximation_factor(const Schedule& schedule, Cost reference) {
  if (!(reference > 0.0)) {
    throw std::invalid_argument("approximation_factor: reference must be > 0");
  }
  return schedule.makespan() / reference;
}

}  // namespace dlb
