#pragma once

// NUMA-aware slab helpers for the core SoA containers (LoadTable). Linux
// places a physical page on the NUMA node of the thread that first writes
// it ("first touch"), so the way to shard one big array across nodes —
// without linking libnuma — is to zero-fill disjoint page ranges from
// distinct threads before the data structure is used. The sharding is
// purely a physical-placement concern: it never changes which bytes hold
// which value, so results are bitwise identical at any shard count
// (including the default of 1, which is a plain single-threaded fill).
//
// Shard count comes from the DLB_NUMA_SHARDS environment variable
// (default 1, clamped to [1, 64]); operators set it to the node count of
// the box. With the default, no threads are spawned at all.

#include <algorithm>
#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <thread>
#include <vector>

namespace dlb::core::numa {

/// Destructive-interference granularity: slab sections are padded to this
/// so adjacent sections never share a cache line.
inline constexpr std::size_t kCacheLine = 64;

/// First-touch granularity. Slabs are page-aligned so shard boundaries can
/// fall exactly on page boundaries.
inline constexpr std::size_t kPageSize = 4096;

[[nodiscard]] inline constexpr std::size_t align_up(
    std::size_t bytes, std::size_t align) noexcept {
  return (bytes + align - 1) / align * align;
}

struct SlabDeleter {
  void operator()(std::byte* p) const noexcept {
    ::operator delete[](p, std::align_val_t{kPageSize});
  }
};

/// Page-aligned raw storage; ownership only, contents uninitialized until
/// first_touch().
using Slab = std::unique_ptr<std::byte[], SlabDeleter>;

[[nodiscard]] inline Slab alloc_slab(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  return Slab(new (std::align_val_t{kPageSize}) std::byte[bytes]);
}

/// Number of first-touch shards: DLB_NUMA_SHARDS clamped to [1, 64],
/// default 1. Read once per process.
[[nodiscard]] inline std::size_t shard_count() noexcept {
  static const std::size_t value = [] {
    const char* env = std::getenv("DLB_NUMA_SHARDS");
    if (env == nullptr || *env == '\0') return std::size_t{1};
    const long parsed = std::strtol(env, nullptr, 10);
    return static_cast<std::size_t>(std::clamp(parsed, 1L, 64L));
  }();
  return value;
}

/// Zero-fills [data, data + bytes) from `shards` threads, each owning a
/// contiguous page-aligned range, so the kernel spreads the physical pages
/// across the nodes those threads run on. shards == 1 degenerates to a
/// plain memset on the calling thread. Call once, before any reader.
inline void first_touch(std::byte* data, std::size_t bytes,
                        std::size_t shards) {
  if (data == nullptr || bytes == 0) return;
  shards = std::max<std::size_t>(shards, 1);
  if (shards == 1) {
    std::memset(data, 0, bytes);
    return;
  }
  const std::size_t pages = (bytes + kPageSize - 1) / kPageSize;
  const std::size_t pages_per_shard = (pages + shards - 1) / shards;
  std::vector<std::thread> workers;
  workers.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin =
        std::min(bytes, s * pages_per_shard * kPageSize);
    const std::size_t end =
        std::min(bytes, (s + 1) * pages_per_shard * kPageSize);
    if (begin >= end) break;
    workers.emplace_back(
        [data, begin, end] { std::memset(data + begin, 0, end - begin); });
  }
  for (std::thread& w : workers) w.join();
}

}  // namespace dlb::core::numa
