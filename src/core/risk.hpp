#pragma once

// Schedule-level evaluation of the stochastic cost model: risk-adjusted
// surrogate instances (what risk-aware kernels balance on), normal-
// approximation quantile loads (the oracle value the quantile-monotonicity
// check reasons about), and paired realization sampling (the empirical
// ground truth of the realization-consistency check). See
// docs/stochastic.md for the definitions and their guarantees.

#include <span>
#include <vector>

#include "core/cost_model.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/types.hpp"
#include "stats/rng.hpp"

namespace dlb::cost {

/// How a risk-aware kernel/selector inflates the predicted costs.
enum class RiskMode {
  kQuantile,       ///< p'(i,j) = p(i,j) * risk_factor(dist_j, q)
  kEffectiveSize,  ///< p'(i,j) = p(i,j) * effective_factor(dist_j)
};

/// The registry-suffix quantile of the `*_q95` kernel/selector family.
inline constexpr double kRiskQuantile = 0.95;

/// Builds the surrogate instance a risk-aware kernel reasons about: every
/// cost column j is scaled by the job's (mean-normalised) risk factor.
/// Groups, scales and job types are preserved; the surrogate carries no
/// cost model of its own. Without a model (or with an all-degenerate one)
/// every factor is exactly 1.0, so the surrogate costs are bitwise equal
/// to the original's.
[[nodiscard]] Instance risk_adjusted_instance(const Instance& instance,
                                              RiskMode mode,
                                              double q = kRiskQuantile);

/// Variance of machine i's completion time under the model: sum over
/// resident jobs of p(i,j)^2 * Var[F_j]. Exactly 0.0 without a model or
/// with only point masses.
[[nodiscard]] double load_variance(const Schedule& schedule, MachineId i);
[[nodiscard]] double load_stddev(const Schedule& schedule, MachineId i);

/// Normal-approximation q-quantile of machine i's completion time:
/// load(i) + z_q * stddev(i). Bitwise equal to load(i) when the variance
/// is zero (z_q is finite and z_0.5 is exactly 0).
[[nodiscard]] double quantile_load(const Schedule& schedule, MachineId i,
                                   double q);

/// max_i quantile_load(i, q) -- monotone non-decreasing in q, and equal to
/// makespan() at q = 0.5 or under zero variance (the two theorems the
/// quantile-monotonicity oracle checks).
[[nodiscard]] double quantile_makespan(const Schedule& schedule, double q);

/// Effective completion time of machine i, load(i) plus the per-job
/// effective-size margins sum p(i,j) * (eff_factor(j) - 1) -- bitwise
/// equal to load(i) when every resident job is degenerate.
[[nodiscard]] double effective_load(const Schedule& schedule, MachineId i);

/// One size-factor realization: exactly one uniform draw per job (even for
/// jobs with point masses), so two schedules of the same instance can be
/// compared under identical realizations.
[[nodiscard]] std::vector<double> sample_factors(const CostModel& model,
                                                 stats::Rng& rng);

/// Cmax of the schedule under realized sizes p(i,j) * factors[j].
[[nodiscard]] double realized_makespan(const Schedule& schedule,
                                       std::span<const double> factors);

}  // namespace dlb::cost
