#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/rng.hpp"

namespace dlb {

Schedule::Schedule(const Instance& instance)
    : instance_(&instance),
      assignment_(instance.num_jobs()),
      loads_(instance.num_machines(), 0.0),
      jobs_on_(instance.num_machines()) {}

Schedule::Schedule(const Instance& instance, Assignment assignment)
    : instance_(&instance),
      assignment_(std::move(assignment)),
      loads_(instance.num_machines(), 0.0),
      jobs_on_(instance.num_machines()) {
  if (assignment_.num_jobs() != instance.num_jobs()) {
    throw std::invalid_argument("Schedule: assignment/instance job mismatch");
  }
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    const MachineId i = assignment_.machine_of(j);
    if (i == kUnassigned) continue;
    if (i >= instance.num_machines()) {
      throw std::invalid_argument(
          "Schedule: assignment references bad machine");
    }
    loads_[i] += instance.cost(i, j);
    jobs_on_[i].push_back(j);
  }
}

Cost Schedule::makespan() const {
  if (makespan_dirty_) {
    cached_makespan_ =
        loads_.empty() ? 0.0 : *std::max_element(loads_.begin(), loads_.end());
    makespan_dirty_ = false;
  }
  return cached_makespan_;
}

MachineId Schedule::argmax_load() const {
  return static_cast<MachineId>(
      std::max_element(loads_.begin(), loads_.end()) - loads_.begin());
}

void Schedule::assign(JobId j, MachineId i) {
  if (assignment_.machine_of(j) != kUnassigned) {
    throw std::logic_error("Schedule::assign: job already assigned");
  }
  assignment_.assign(j, i);
  loads_[i] += instance_->cost(i, j);
  jobs_on_[i].push_back(j);
  makespan_dirty_ = true;
}

void Schedule::detach(JobId j) {
  const MachineId from = assignment_.machine_of(j);
  loads_[from] -= instance_->cost(from, j);
  auto& list = jobs_on_[from];
  const auto it = std::find(list.begin(), list.end(), j);
  // The job is guaranteed present; swap-erase keeps the removal O(1).
  *it = list.back();
  list.pop_back();
}

void Schedule::move(JobId j, MachineId to) {
  const MachineId from = assignment_.machine_of(j);
  if (from == kUnassigned) {
    assign(j, to);
    return;
  }
  if (from == to) return;
  detach(j);
  assignment_.assign(j, to);
  loads_[to] += instance_->cost(to, j);
  jobs_on_[to].push_back(j);
  ++migrations_;
  makespan_dirty_ = true;
}

void Schedule::unassign(JobId j) {
  if (assignment_.machine_of(j) == kUnassigned) return;
  detach(j);
  assignment_.unassign(j);
  makespan_dirty_ = true;
}

std::uint64_t Schedule::fingerprint() const {
  // Position-dependent mix of (job, machine); order-insensitive across jobs
  // because each job contributes a value derived from its own id.
  std::uint64_t h = 0x51ab5f2e8c774177ULL;
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    std::uint64_t x = (static_cast<std::uint64_t>(j) << 32) |
                      static_cast<std::uint64_t>(assignment_.machine_of(j));
    h ^= stats::splitmix64(x);
  }
  return h;
}

Cost Schedule::total_load() const noexcept {
  Cost total = 0.0;
  for (Cost l : loads_) total += l;
  return total;
}

bool Schedule::check_consistency(double tol) const {
  std::vector<Cost> expected(loads_.size(), 0.0);
  std::vector<char> seen(assignment_.num_jobs(), 0);
  for (MachineId i = 0; i < jobs_on_.size(); ++i) {
    for (JobId j : jobs_on_[i]) {
      if (assignment_.machine_of(j) != i) return false;
      if (seen[j]) return false;
      seen[j] = 1;
      expected[i] += instance_->cost(i, j);
    }
  }
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    if (assignment_.machine_of(j) != kUnassigned && !seen[j]) return false;
  }
  for (MachineId i = 0; i < loads_.size(); ++i) {
    if (std::abs(expected[i] - loads_[i]) > tol) return false;
  }
  return true;
}

}  // namespace dlb
