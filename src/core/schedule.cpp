#include "core/schedule.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/rng.hpp"

namespace dlb {

Schedule::Schedule(const Instance& instance)
    : instance_(&instance),
      assignment_(instance.num_jobs()),
      table_(instance.num_machines(), instance.num_jobs()) {}

Schedule::Schedule(const Instance& instance, Assignment assignment)
    : instance_(&instance),
      assignment_(std::move(assignment)),
      table_(instance.num_machines(), instance.num_jobs()) {
  if (assignment_.num_jobs() != instance.num_jobs()) {
    throw std::invalid_argument("Schedule: assignment/instance job mismatch");
  }
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    const MachineId i = assignment_.machine_of(j);
    if (i == kUnassigned) continue;
    if (i >= instance.num_machines()) {
      throw std::invalid_argument(
          "Schedule: assignment references bad machine");
    }
    table_.attach(j, i, instance.cost(i, j), /*migrated=*/false);
  }
}

Schedule::Schedule(const Schedule& other)
    : instance_(other.instance_),
      decision_instance_(other.decision_instance_),
      decision_loads_(other.decision_loads_),
      assignment_(other.assignment_),
      table_(other.table_),
      migrations_(other.migrations()),
      cached_makespan_(other.cached_makespan_),
      makespan_dirty_(
          other.makespan_dirty_.load(std::memory_order_relaxed)) {}

Schedule& Schedule::operator=(const Schedule& other) {
  if (this == &other) return *this;
  instance_ = other.instance_;
  decision_instance_ = other.decision_instance_;
  decision_loads_ = other.decision_loads_;
  assignment_ = other.assignment_;
  table_ = other.table_;
  migrations_.store(other.migrations(), std::memory_order_relaxed);
  cached_makespan_ = other.cached_makespan_;
  makespan_dirty_.store(
      other.makespan_dirty_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  return *this;
}

void Schedule::set_decision_instance(
    std::shared_ptr<const Instance> surrogate) {
  if (surrogate && (surrogate->num_machines() != instance_->num_machines() ||
                    surrogate->num_jobs() != instance_->num_jobs())) {
    throw std::invalid_argument(
        "Schedule::set_decision_instance: shape mismatch with the real "
        "instance");
  }
  decision_instance_ = std::move(surrogate);
  if (!decision_instance_) {
    decision_loads_.clear();
    return;
  }
  // Canonical rebuild in ascending job id -- bitwise the constructor's
  // billing order, so equal surrogate costs give equal accumulator bits.
  decision_loads_.assign(instance_->num_machines(), 0.0);
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    const MachineId i = assignment_.machine_of(j);
    if (i == kUnassigned) continue;
    decision_loads_[i] += decision_instance_->cost(i, j);
  }
}

Cost Schedule::makespan() const {
  if (makespan_dirty_.load(std::memory_order_relaxed)) {
    const std::span<const Cost> loads = table_.loads();
    cached_makespan_ =
        loads.empty() ? 0.0 : *std::max_element(loads.begin(), loads.end());
    makespan_dirty_.store(false, std::memory_order_relaxed);
  }
  return cached_makespan_;
}

MachineId Schedule::argmax_load() const {
  const std::span<const Cost> loads = table_.loads();
  return static_cast<MachineId>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
}

void Schedule::assign(JobId j, MachineId i) {
  if (assignment_.machine_of(j) != kUnassigned) {
    throw std::logic_error("Schedule::assign: job already assigned");
  }
  assignment_.assign(j, i);
  table_.attach(j, i, instance_->cost(i, j), /*migrated=*/false);
  if (decision_instance_) decision_loads_[i] += decision_instance_->cost(i, j);
  mark_dirty();
}

void Schedule::move(JobId j, MachineId to) {
  const MachineId from = assignment_.machine_of(j);
  if (from == kUnassigned) {
    assign(j, to);
    return;
  }
  if (from == to) return;
  table_.detach(j, from, instance_->cost(from, j));
  assignment_.assign(j, to);
  table_.attach(j, to, instance_->cost(to, j), /*migrated=*/true);
  if (decision_instance_) {
    decision_loads_[from] -= decision_instance_->cost(from, j);
    decision_loads_[to] += decision_instance_->cost(to, j);
  }
  migrations_.fetch_add(1, std::memory_order_relaxed);
  mark_dirty();
}

void Schedule::unassign(JobId j) {
  const MachineId from = assignment_.machine_of(j);
  if (from == kUnassigned) return;
  table_.detach(j, from, instance_->cost(from, j));
  if (decision_instance_) {
    decision_loads_[from] -= decision_instance_->cost(from, j);
  }
  assignment_.unassign(j);
  mark_dirty();
}

void Schedule::restore_loads(const std::vector<Cost>& loads) {
  if (loads.size() != table_.num_machines()) {
    throw std::invalid_argument(
        "Schedule::restore_loads: expected " +
        std::to_string(table_.num_machines()) + " loads, got " +
        std::to_string(loads.size()));
  }
  for (MachineId i = 0; i < loads.size(); ++i) {
    table_.set_load(i, loads[i]);
  }
  mark_dirty();
}

std::uint64_t Schedule::fingerprint() const {
  // Position-dependent mix of (job, machine); order-insensitive across jobs
  // because each job contributes a value derived from its own id.
  std::uint64_t h = 0x51ab5f2e8c774177ULL;
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    std::uint64_t x = (static_cast<std::uint64_t>(j) << 32) |
                      static_cast<std::uint64_t>(assignment_.machine_of(j));
    h ^= stats::splitmix64(x);
  }
  return h;
}

Cost Schedule::total_load() const noexcept {
  Cost total = 0.0;
  for (Cost l : table_.loads()) total += l;
  return total;
}

bool Schedule::check_consistency(double tol) const {
  const std::size_t m = table_.num_machines();
  std::vector<Cost> expected(m, 0.0);
  std::vector<char> seen(assignment_.num_jobs(), 0);
  for (MachineId i = 0; i < m; ++i) {
    std::size_t listed = 0;
    for (JobId j : table_.jobs(i)) {
      if (assignment_.machine_of(j) != i) return false;
      if (seen[j]) return false;
      seen[j] = 1;
      expected[i] += instance_->cost(i, j);
      ++listed;
    }
    if (listed != table_.count(i)) return false;
  }
  for (JobId j = 0; j < assignment_.num_jobs(); ++j) {
    if (assignment_.machine_of(j) != kUnassigned && !seen[j]) return false;
  }
  for (MachineId i = 0; i < m; ++i) {
    if (std::abs(expected[i] - table_.load(i)) > tol) return false;
  }
  return true;
}

}  // namespace dlb
