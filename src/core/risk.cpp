#include "core/risk.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dlb::cost {

Instance risk_adjusted_instance(const Instance& instance, RiskMode mode,
                                double q) {
  const std::size_t n = instance.num_jobs();
  std::vector<double> factor(n, 1.0);
  if (instance.has_cost_model()) {
    const CostModel& model = instance.cost_model();
    for (JobId j = 0; j < n; ++j) {
      factor[j] = mode == RiskMode::kQuantile
                      ? risk_factor(model.dist(j), q)
                      : effective_factor(model.dist(j));
    }
  }
  std::vector<std::vector<Cost>> rows(instance.num_groups(),
                                      std::vector<Cost>(n));
  for (GroupId g = 0; g < instance.num_groups(); ++g) {
    for (JobId j = 0; j < n; ++j) {
      rows[g][j] = instance.group_cost(g, j) * factor[j];
    }
  }
  std::vector<GroupId> group_of(instance.num_machines());
  std::vector<double> scales(instance.num_machines());
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    group_of[i] = instance.group_of(i);
    scales[i] = instance.scale(i);
  }
  Instance adjusted(std::move(rows), std::move(group_of), std::move(scales));
  if (instance.has_job_types()) {
    std::vector<JobTypeId> types(n);
    for (JobId j = 0; j < n; ++j) types[j] = instance.job_type(j);
    adjusted.set_job_types(std::move(types));
  }
  return adjusted;
}

double load_variance(const Schedule& schedule, MachineId i) {
  const Instance& instance = schedule.instance();
  if (!instance.has_cost_model()) return 0.0;
  const CostModel& model = instance.cost_model();
  // Sum in job-id order, NOT jobs_on(i) order: jobs_on is move-history
  // dependent, and these aggregates must be bitwise reproducible across
  // checkpoint/restore and any other path that rebuilds the same
  // assignment in a different order.
  double variance = 0.0;
  for (JobId j = 0; j < schedule.num_jobs(); ++j) {
    if (schedule.machine_of(j) != i) continue;
    const double p = instance.cost(i, j);
    variance += p * p * dist_variance(model.dist(j));
  }
  return variance;
}

double load_stddev(const Schedule& schedule, MachineId i) {
  return std::sqrt(load_variance(schedule, i));
}

double quantile_load(const Schedule& schedule, MachineId i, double q) {
  return schedule.load(i) + inverse_normal_cdf(q) * load_stddev(schedule, i);
}

double quantile_makespan(const Schedule& schedule, double q) {
  double worst = 0.0;
  for (MachineId i = 0; i < schedule.num_machines(); ++i) {
    worst = std::max(worst, quantile_load(schedule, i, q));
  }
  return worst;
}

double effective_load(const Schedule& schedule, MachineId i) {
  const Instance& instance = schedule.instance();
  if (!instance.has_cost_model()) return schedule.load(i);
  const CostModel& model = instance.cost_model();
  // Additive-margin form, load(i) + sum p_j (factor_j - 1), NOT a
  // recomputed sum of p_j * factor_j: the margin is exactly +0.0 per job
  // under a degenerate distribution (factor is literally 1.0), so the
  // result is bitwise the mean accumulator's load -- the zero-variance
  // anchor for the max-load_effsize selector. Job-id order: see
  // load_variance.
  double margin = 0.0;
  for (JobId j = 0; j < schedule.num_jobs(); ++j) {
    if (schedule.machine_of(j) != i) continue;
    margin += instance.cost(i, j) * (effective_factor(model.dist(j)) - 1.0);
  }
  return schedule.load(i) + margin;
}

std::vector<double> sample_factors(const CostModel& model, stats::Rng& rng) {
  std::vector<double> factors(model.num_jobs());
  for (double& f : factors) f = rng.uniform();
  for (JobId j = 0; j < model.num_jobs(); ++j) {
    factors[j] = sample_factor(model.dist(j), factors[j]);
  }
  return factors;
}

double realized_makespan(const Schedule& schedule,
                         std::span<const double> factors) {
  const Instance& instance = schedule.instance();
  std::vector<double> loads(schedule.num_machines(), 0.0);
  for (JobId j = 0; j < schedule.num_jobs(); ++j) {  // Job-id order.
    const MachineId i = schedule.machine_of(j);
    if (i == kUnassigned) continue;
    loads[i] += instance.cost(i, j) * factors[j];
  }
  return *std::max_element(loads.begin(), loads.end());
}

}  // namespace dlb::cost
