#pragma once

// Shared vocabulary types for the scheduling model (Section II of the
// paper): jobs, machines, machine groups, job types, processing costs.

#include <cstddef>
#include <cstdint>
#include <limits>

namespace dlb {

/// Index of a machine in an Instance, dense in [0, num_machines).
using MachineId = std::uint32_t;

/// Index of a job in an Instance, dense in [0, num_jobs).
using JobId = std::uint32_t;

/// Index of a group of identical machines (a "cluster" in the paper's
/// two-cluster sections), dense in [0, num_groups).
using GroupId = std::uint32_t;

/// Index of a job type (Section V: jobs of the same type have identical
/// cost rows), dense in [0, num_job_types).
using JobTypeId = std::uint32_t;

/// Processing time of a job on a machine; strictly positive and finite in
/// valid instances (the paper allows +inf conceptually, we model "cannot
/// run" with a very large finite cost to keep arithmetic total).
using Cost = double;

/// Sentinel for "job not assigned to any machine".
inline constexpr MachineId kUnassigned = std::numeric_limits<MachineId>::max();

/// Sentinel group/type used before initialisation.
inline constexpr GroupId kNoGroup = std::numeric_limits<GroupId>::max();

}  // namespace dlb
