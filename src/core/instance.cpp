#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>
#include <utility>

namespace dlb {

Instance::Instance(std::vector<std::vector<Cost>> group_costs,
                   std::vector<GroupId> group_of, std::vector<double> scales)
    : owned_group_of_(std::move(group_of)), owned_scales_(std::move(scales)) {
  if (group_costs.empty()) {
    throw std::invalid_argument("Instance: need at least one group");
  }
  if (owned_group_of_.empty()) {
    throw std::invalid_argument("Instance: need at least one machine");
  }
  num_groups_ = group_costs.size();
  num_machines_ = owned_group_of_.size();
  num_jobs_ = group_costs.front().size();
  for (const auto& row : group_costs) {
    if (row.size() != num_jobs_) {
      throw std::invalid_argument("Instance: ragged group cost rows");
    }
  }
  owned_costs_.reserve(num_groups_ * num_jobs_);
  for (const auto& row : group_costs) {
    owned_costs_.insert(owned_costs_.end(), row.begin(), row.end());
  }
  for (Cost c : owned_costs_) {
    if (!(c > 0.0) || !std::isfinite(c)) {
      throw std::invalid_argument(
          "Instance: costs must be positive and finite");
    }
  }
  for (GroupId g : owned_group_of_) {
    if (g >= num_groups_) {
      throw std::invalid_argument("Instance: machine references unknown group");
    }
  }
  if (owned_scales_.empty()) {
    owned_scales_.assign(num_machines_, 1.0);
  } else if (owned_scales_.size() != num_machines_) {
    throw std::invalid_argument("Instance: scales size != machine count");
  }
  for (double s : owned_scales_) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument("Instance: scales must be positive finite");
    }
  }
  costs_ = owned_costs_.data();
  group_of_ = owned_group_of_.data();
  scales_ = owned_scales_.data();
  compute_caches();
}

Instance::Instance(Borrowed, const Cost* costs, const GroupId* group_of,
                   const double* scales, const JobTypeId* types,
                   std::size_t num_machines, std::size_t num_groups,
                   std::size_t num_jobs, std::size_t num_job_types,
                   Cost max_cost, bool unit_scales)
    : costs_(costs),
      group_of_(group_of),
      scales_(scales),
      types_(types),
      borrowed_(true),
      num_machines_(num_machines),
      num_groups_(num_groups),
      num_jobs_(num_jobs),
      num_job_types_(num_job_types),
      max_cost_(max_cost),
      unit_scales_(unit_scales) {
  if (num_groups_ == 0) {
    throw std::invalid_argument("Instance: need at least one group");
  }
  if (num_machines_ == 0) {
    throw std::invalid_argument("Instance: need at least one machine");
  }
  for (std::size_t i = 0; i < num_machines_; ++i) {
    if (group_of_[i] >= num_groups_) {
      throw std::invalid_argument("Instance: machine references unknown group");
    }
  }
  build_machines_by_group();
}

Instance::Instance(const Instance& other)
    : owned_costs_(other.owned_costs_),
      owned_group_of_(other.owned_group_of_),
      owned_scales_(other.owned_scales_),
      owned_types_(other.owned_types_),
      costs_(other.costs_),
      group_of_(other.group_of_),
      scales_(other.scales_),
      types_(other.types_),
      borrowed_(other.borrowed_),
      num_machines_(other.num_machines_),
      num_groups_(other.num_groups_),
      num_jobs_(other.num_jobs_),
      machines_by_group_(other.machines_by_group_),
      num_job_types_(other.num_job_types_),
      max_cost_(other.max_cost_),
      unit_scales_(other.unit_scales_),
      cost_model_(other.cost_model_) {
  rebind();
}

Instance& Instance::operator=(const Instance& other) {
  if (this != &other) {
    Instance tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

void Instance::rebind() {
  if (!borrowed_) {
    costs_ = owned_costs_.data();
    group_of_ = owned_group_of_.data();
    scales_ = owned_scales_.data();
  }
  if (!owned_types_.empty()) types_ = owned_types_.data();
}

void Instance::build_machines_by_group() {
  machines_by_group_.assign(num_groups_, {});
  for (MachineId i = 0; i < num_machines_; ++i) {
    machines_by_group_[group_of_[i]].push_back(i);
  }
}

void Instance::compute_caches() {
  build_machines_by_group();
  unit_scales_ = std::all_of(scales_, scales_ + num_machines_,
                             [](double s) { return s == 1.0; });
  max_cost_ = 0.0;
  // The true max over (i, j) needs per-group max scale; compute exactly.
  std::vector<double> group_max_scale(num_groups_, 0.0);
  for (MachineId i = 0; i < num_machines_; ++i) {
    group_max_scale[group_of_[i]] =
        std::max(group_max_scale[group_of_[i]], scales_[i]);
  }
  for (GroupId g = 0; g < num_groups_; ++g) {
    // Empty groups (no machines) and empty rows (zero jobs) contribute no
    // (machine, job) pair — skipping them also keeps max_element legal.
    if (machines_by_group_[g].empty() || num_jobs_ == 0) continue;
    const auto row = group_row(g);
    const Cost row_max = *std::max_element(row.begin(), row.end());
    max_cost_ = std::max(max_cost_, row_max * group_max_scale[g]);
  }
}

Instance Instance::identical(std::size_t num_machines,
                             std::vector<Cost> job_costs) {
  if (num_machines == 0) {
    throw std::invalid_argument("Instance::identical: need machines");
  }
  std::vector<std::vector<Cost>> rows;
  rows.push_back(std::move(job_costs));
  return Instance(std::move(rows),
                  std::vector<GroupId>(num_machines, 0));
}

Instance Instance::related(std::vector<double> speeds,
                           std::vector<Cost> base_costs) {
  if (speeds.empty()) {
    throw std::invalid_argument("Instance::related: need machines");
  }
  std::vector<double> scales(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    if (!(speeds[i] > 0.0)) {
      throw std::invalid_argument("Instance::related: speeds must be > 0");
    }
    scales[i] = 1.0 / speeds[i];
  }
  std::vector<std::vector<Cost>> rows;
  rows.push_back(std::move(base_costs));
  return Instance(std::move(rows), std::vector<GroupId>(speeds.size(), 0),
                  std::move(scales));
}

Instance Instance::clustered(const std::vector<std::size_t>& cluster_sizes,
                             std::vector<std::vector<Cost>> cluster_costs) {
  if (cluster_sizes.size() != cluster_costs.size()) {
    throw std::invalid_argument(
        "Instance::clustered: sizes/costs length mismatch");
  }
  std::vector<GroupId> group_of;
  for (GroupId g = 0; g < cluster_sizes.size(); ++g) {
    if (cluster_sizes[g] == 0) {
      throw std::invalid_argument("Instance::clustered: empty cluster");
    }
    group_of.insert(group_of.end(), cluster_sizes[g], g);
  }
  return Instance(std::move(cluster_costs), std::move(group_of));
}

Instance Instance::unrelated(std::vector<std::vector<Cost>> costs) {
  std::vector<GroupId> group_of(costs.size());
  std::iota(group_of.begin(), group_of.end(), 0);
  return Instance(std::move(costs), std::move(group_of));
}

Cost Instance::min_cost_of_job(JobId j) const {
  Cost best = cost(0, j);
  for (MachineId i = 1; i < num_machines(); ++i) {
    best = std::min(best, cost(i, j));
  }
  return best;
}

Cost Instance::total_min_work() const {
  Cost total = 0.0;
  for (JobId j = 0; j < num_jobs_; ++j) total += min_cost_of_job(j);
  return total;
}

void Instance::set_job_types(std::vector<JobTypeId> type_of) {
  if (type_of.size() != num_jobs_) {
    throw std::invalid_argument("Instance::set_job_types: size mismatch");
  }
  std::size_t num_types = 0;
  for (JobTypeId t : type_of) {
    num_types = std::max<std::size_t>(num_types, t + 1);
  }
  // Verify the defining property of job types on the group cost rows
  // (scales are per-machine, so equal group rows imply equal costs).
  std::vector<JobId> representative(num_types, kUnassigned);
  for (JobId j = 0; j < num_jobs_; ++j) {
    const JobTypeId t = type_of[j];
    if (representative[t] == kUnassigned) {
      representative[t] = j;
      continue;
    }
    for (GroupId g = 0; g < num_groups(); ++g) {
      if (group_cost(g, j) != group_cost(g, representative[t])) {
        throw std::invalid_argument(
            "Instance::set_job_types: jobs of equal type must have equal "
            "cost rows");
      }
    }
    if (cost_model_ &&
        !(cost_model_->dist(j) == cost_model_->dist(representative[t]))) {
      throw std::invalid_argument(
          "Instance::set_job_types: jobs of equal type must have equal "
          "size distributions");
    }
  }
  for (std::size_t t = 0; t < num_types; ++t) {
    if (representative[t] == kUnassigned) {
      throw std::invalid_argument(
          "Instance::set_job_types: type ids must be dense");
    }
  }
  owned_types_ = std::move(type_of);
  types_ = owned_types_.empty() ? nullptr : owned_types_.data();
  num_job_types_ = num_types;
}

void Instance::set_cost_model(cost::CostModel model) {
  if (model.num_jobs() != num_jobs_) {
    throw std::invalid_argument(
        "Instance::set_cost_model: one distribution per job required");
  }
  if (has_job_types()) {
    // Risk-adjusting multiplies each cost column by a per-job factor;
    // types survive that only if equal-typed jobs share a distribution.
    std::vector<JobId> representative(num_job_types_, kUnassigned);
    for (JobId j = 0; j < num_jobs_; ++j) {
      const JobTypeId t = types_[j];
      if (representative[t] == kUnassigned) {
        representative[t] = j;
      } else if (!(model.dist(j) == model.dist(representative[t]))) {
        throw std::invalid_argument(
            "Instance::set_cost_model: jobs of equal type must have equal "
            "size distributions");
      }
    }
  }
  cost_model_ = std::move(model);
}

std::size_t Instance::infer_job_types() {
  std::map<std::vector<Cost>, JobTypeId> seen;
  std::vector<JobTypeId> type_of(num_jobs_);
  for (JobId j = 0; j < num_jobs_; ++j) {
    std::vector<Cost> column(num_groups());
    for (GroupId g = 0; g < num_groups(); ++g) column[g] = group_cost(g, j);
    const auto [it, inserted] =
        seen.emplace(std::move(column), static_cast<JobTypeId>(seen.size()));
    type_of[j] = it->second;
  }
  set_job_types(std::move(type_of));
  return num_job_types_;
}

}  // namespace dlb
