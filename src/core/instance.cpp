#include "core/instance.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

namespace dlb {

namespace {

void check_positive_finite(const std::vector<std::vector<Cost>>& rows) {
  for (const auto& row : rows) {
    for (Cost c : row) {
      if (!(c > 0.0) || !std::isfinite(c)) {
        throw std::invalid_argument(
            "Instance: costs must be positive and finite");
      }
    }
  }
}

}  // namespace

Instance::Instance(std::vector<std::vector<Cost>> group_costs,
                   std::vector<GroupId> group_of, std::vector<double> scales)
    : group_costs_(std::move(group_costs)),
      group_of_(std::move(group_of)),
      scales_(std::move(scales)) {
  if (group_costs_.empty()) {
    throw std::invalid_argument("Instance: need at least one group");
  }
  if (group_of_.empty()) {
    throw std::invalid_argument("Instance: need at least one machine");
  }
  num_jobs_ = group_costs_.front().size();
  for (const auto& row : group_costs_) {
    if (row.size() != num_jobs_) {
      throw std::invalid_argument("Instance: ragged group cost rows");
    }
  }
  check_positive_finite(group_costs_);
  for (GroupId g : group_of_) {
    if (g >= group_costs_.size()) {
      throw std::invalid_argument("Instance: machine references unknown group");
    }
  }
  if (scales_.empty()) {
    scales_.assign(group_of_.size(), 1.0);
  } else if (scales_.size() != group_of_.size()) {
    throw std::invalid_argument("Instance: scales size != machine count");
  }
  for (double s : scales_) {
    if (!(s > 0.0) || !std::isfinite(s)) {
      throw std::invalid_argument("Instance: scales must be positive finite");
    }
  }
  compute_caches();
}

void Instance::compute_caches() {
  machines_by_group_.assign(group_costs_.size(), {});
  for (MachineId i = 0; i < group_of_.size(); ++i) {
    machines_by_group_[group_of_[i]].push_back(i);
  }
  unit_scales_ =
      std::all_of(scales_.begin(), scales_.end(),
                  [](double s) { return s == 1.0; });
  max_cost_ = 0.0;
  // The true max over (i, j) needs per-group max scale; compute exactly.
  std::vector<double> group_max_scale(group_costs_.size(), 0.0);
  for (MachineId i = 0; i < group_of_.size(); ++i) {
    group_max_scale[group_of_[i]] =
        std::max(group_max_scale[group_of_[i]], scales_[i]);
  }
  for (GroupId g = 0; g < group_costs_.size(); ++g) {
    // Empty groups (no machines) and empty rows (zero jobs) contribute no
    // (machine, job) pair — skipping them also keeps max_element legal.
    if (machines_by_group_[g].empty() || group_costs_[g].empty()) continue;
    const Cost row_max =
        *std::max_element(group_costs_[g].begin(), group_costs_[g].end());
    max_cost_ = std::max(max_cost_, row_max * group_max_scale[g]);
  }
}

Instance Instance::identical(std::size_t num_machines,
                             std::vector<Cost> job_costs) {
  if (num_machines == 0) {
    throw std::invalid_argument("Instance::identical: need machines");
  }
  std::vector<std::vector<Cost>> rows;
  rows.push_back(std::move(job_costs));
  return Instance(std::move(rows),
                  std::vector<GroupId>(num_machines, 0));
}

Instance Instance::related(std::vector<double> speeds,
                           std::vector<Cost> base_costs) {
  if (speeds.empty()) {
    throw std::invalid_argument("Instance::related: need machines");
  }
  std::vector<double> scales(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    if (!(speeds[i] > 0.0)) {
      throw std::invalid_argument("Instance::related: speeds must be > 0");
    }
    scales[i] = 1.0 / speeds[i];
  }
  std::vector<std::vector<Cost>> rows;
  rows.push_back(std::move(base_costs));
  return Instance(std::move(rows), std::vector<GroupId>(speeds.size(), 0),
                  std::move(scales));
}

Instance Instance::clustered(const std::vector<std::size_t>& cluster_sizes,
                             std::vector<std::vector<Cost>> cluster_costs) {
  if (cluster_sizes.size() != cluster_costs.size()) {
    throw std::invalid_argument(
        "Instance::clustered: sizes/costs length mismatch");
  }
  std::vector<GroupId> group_of;
  for (GroupId g = 0; g < cluster_sizes.size(); ++g) {
    if (cluster_sizes[g] == 0) {
      throw std::invalid_argument("Instance::clustered: empty cluster");
    }
    group_of.insert(group_of.end(), cluster_sizes[g], g);
  }
  return Instance(std::move(cluster_costs), std::move(group_of));
}

Instance Instance::unrelated(std::vector<std::vector<Cost>> costs) {
  std::vector<GroupId> group_of(costs.size());
  std::iota(group_of.begin(), group_of.end(), 0);
  return Instance(std::move(costs), std::move(group_of));
}

Cost Instance::min_cost_of_job(JobId j) const {
  Cost best = cost(0, j);
  for (MachineId i = 1; i < num_machines(); ++i) {
    best = std::min(best, cost(i, j));
  }
  return best;
}

Cost Instance::total_min_work() const {
  Cost total = 0.0;
  for (JobId j = 0; j < num_jobs_; ++j) total += min_cost_of_job(j);
  return total;
}

void Instance::set_job_types(std::vector<JobTypeId> type_of) {
  if (type_of.size() != num_jobs_) {
    throw std::invalid_argument("Instance::set_job_types: size mismatch");
  }
  std::size_t num_types = 0;
  for (JobTypeId t : type_of) {
    num_types = std::max<std::size_t>(num_types, t + 1);
  }
  // Verify the defining property of job types on the group cost rows
  // (scales are per-machine, so equal group rows imply equal costs).
  std::vector<JobId> representative(num_types, kUnassigned);
  for (JobId j = 0; j < num_jobs_; ++j) {
    const JobTypeId t = type_of[j];
    if (representative[t] == kUnassigned) {
      representative[t] = j;
      continue;
    }
    for (GroupId g = 0; g < num_groups(); ++g) {
      if (group_costs_[g][j] != group_costs_[g][representative[t]]) {
        throw std::invalid_argument(
            "Instance::set_job_types: jobs of equal type must have equal "
            "cost rows");
      }
    }
    if (cost_model_ &&
        !(cost_model_->dist(j) == cost_model_->dist(representative[t]))) {
      throw std::invalid_argument(
          "Instance::set_job_types: jobs of equal type must have equal "
          "size distributions");
    }
  }
  for (std::size_t t = 0; t < num_types; ++t) {
    if (representative[t] == kUnassigned) {
      throw std::invalid_argument(
          "Instance::set_job_types: type ids must be dense");
    }
  }
  type_of_ = std::move(type_of);
  num_job_types_ = num_types;
}

void Instance::set_cost_model(cost::CostModel model) {
  if (model.num_jobs() != num_jobs_) {
    throw std::invalid_argument(
        "Instance::set_cost_model: one distribution per job required");
  }
  if (has_job_types()) {
    // Risk-adjusting multiplies each cost column by a per-job factor;
    // types survive that only if equal-typed jobs share a distribution.
    std::vector<JobId> representative(num_job_types_, kUnassigned);
    for (JobId j = 0; j < num_jobs_; ++j) {
      const JobTypeId t = type_of_[j];
      if (representative[t] == kUnassigned) {
        representative[t] = j;
      } else if (!(model.dist(j) == model.dist(representative[t]))) {
        throw std::invalid_argument(
            "Instance::set_cost_model: jobs of equal type must have equal "
            "size distributions");
      }
    }
  }
  cost_model_ = std::move(model);
}

std::size_t Instance::infer_job_types() {
  std::map<std::vector<Cost>, JobTypeId> seen;
  std::vector<JobTypeId> type_of(num_jobs_);
  for (JobId j = 0; j < num_jobs_; ++j) {
    std::vector<Cost> column(num_groups());
    for (GroupId g = 0; g < num_groups(); ++g) column[g] = group_costs_[g][j];
    const auto [it, inserted] =
        seen.emplace(std::move(column), static_cast<JobTypeId>(seen.size()));
    type_of[j] = it->second;
  }
  set_job_types(std::move(type_of));
  return num_job_types_;
}

}  // namespace dlb
