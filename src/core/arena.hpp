#pragma once

// Arena: a monotonic bump allocator for the engines' epoch plan buffers.
// Every buffer an exchange engine needs across its plan/execute/commit
// loop (initiator order, claim marks, session batch, outcome slots) is
// carved out of one cache-line-aligned block sized up front from the
// machine count — machine ids are stable under churn, so the capacities
// are bounded for the whole run and the loop itself never allocates.
// Overflows fall back to heap side-blocks (correctness first) but are
// counted: the engines export the count as an obs counter and Debug
// builds assert it stays zero.

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace dlb::core {

class Arena {
 public:
  /// Cache-line alignment for every allocation: adjacent buffers never
  /// share a line, so parallel writers on different buffers don't
  /// false-share.
  static constexpr std::size_t kAlign = 64;

  [[nodiscard]] static constexpr std::size_t align_up(
      std::size_t bytes) noexcept {
    return (bytes + kAlign - 1) / kAlign * kAlign;
  }

  /// Bytes an alloc<T>(count) consumes (for sizing the arena exactly).
  template <typename T>
  [[nodiscard]] static constexpr std::size_t bytes_for(
      std::size_t count) noexcept {
    return align_up(count * sizeof(T));
  }

  explicit Arena(std::size_t bytes) : capacity_(align_up(bytes)) {
    if (capacity_ != 0) {
      block_.reset(new (std::align_val_t{kAlign}) std::byte[capacity_]);
    }
  }

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Value-initialized span of `count` Ts. Draws from the block when it
  /// fits, otherwise from a counted heap side-block.
  template <typename T>
  [[nodiscard]] std::span<T> alloc(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T> &&
                      std::is_trivially_destructible_v<T>,
                  "Arena hands out raw storage; T must be trivial enough");
    static_assert(alignof(T) <= kAlign);
    const std::size_t bytes = bytes_for<T>(count);
    std::byte* raw = nullptr;
    if (used_ + bytes <= capacity_) {
      raw = block_.get() + used_;
      used_ += bytes;
    } else {
      ++overflows_;
      side_.emplace_back(new (std::align_val_t{kAlign})
                             std::byte[bytes == 0 ? kAlign : bytes]);
      raw = side_.back().get();
    }
    T* first = reinterpret_cast<T*>(raw);
    for (std::size_t i = 0; i < count; ++i) {
      ::new (static_cast<void*>(first + i)) T();
    }
    return {first, count};
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  /// Allocations that did not fit in the up-front block. The engines'
  /// no-allocation-in-the-loop invariant is exactly `overflows() == 0`.
  [[nodiscard]] std::size_t overflows() const noexcept { return overflows_; }

 private:
  struct AlignedDeleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{kAlign});
    }
  };
  using Block = std::unique_ptr<std::byte[], AlignedDeleter>;

  Block block_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::size_t overflows_ = 0;
  std::vector<Block> side_;
};

/// Fixed-capacity vector over arena storage: the std::vector surface the
/// engines use (assign/push_back/clear/iterate), minus growth. Exceeding
/// the capacity is a precondition violation (asserted); callers size the
/// backing span to the run-wide bound (machine count), which churn cannot
/// exceed because machine ids are stable.
template <typename T>
class FixedVec {
 public:
  FixedVec() = default;
  explicit FixedVec(std::span<T> storage) noexcept
      : data_(storage.data()), capacity_(storage.size()) {}

  void push_back(const T& value) noexcept {
    assert(size_ < capacity_);
    data_[size_++] = value;
  }

  template <typename It>
  void assign(It first, It last) {
    size_ = 0;
    for (; first != last; ++first) push_back(*first);
  }

  void assign(std::size_t count, const T& value) noexcept {
    assert(count <= capacity_);
    size_ = count;
    for (std::size_t i = 0; i < count; ++i) data_[i] = value;
  }

  void clear() noexcept { size_ = 0; }

  [[nodiscard]] T* begin() noexcept { return data_; }
  [[nodiscard]] T* end() noexcept { return data_ + size_; }
  [[nodiscard]] const T* begin() const noexcept { return data_; }
  [[nodiscard]] const T* end() const noexcept { return data_ + size_; }
  [[nodiscard]] T& operator[](std::size_t i) noexcept { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const noexcept {
    return data_[i];
  }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

 private:
  T* data_ = nullptr;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dlb::core
