#pragma once

// Imbalance metrics beyond the makespan. The paper's objective is Cmax,
// but an operator of a real system also watches how evenly the rest of the
// fleet is loaded; these are the standard measures.

#include "core/schedule.hpp"

namespace dlb {

/// Makespan divided by the mean load: 1.0 = perfectly even, m = everything
/// on one machine. Requires a non-empty schedule with positive total load.
[[nodiscard]] double imbalance_ratio(const Schedule& schedule);

/// Jain's fairness index (sum l)^2 / (m * sum l^2): 1.0 = perfectly even,
/// 1/m = one machine does everything. Defined as 1.0 for zero total load.
[[nodiscard]] double jain_fairness(const Schedule& schedule);

/// Population standard deviation of the machine loads.
[[nodiscard]] double load_stddev(const Schedule& schedule);

/// Fraction of machines whose load is strictly below `fraction` times the
/// mean load — the "underutilised" tail.
[[nodiscard]] double underutilised_fraction(const Schedule& schedule,
                                            double fraction = 0.5);

}  // namespace dlb
