#include "core/lower_bounds.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dlb {

Cost max_min_cost_bound(const Instance& instance) {
  Cost bound = 0.0;
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    bound = std::max(bound, instance.min_cost_of_job(j));
  }
  return bound;
}

Cost min_work_bound(const Instance& instance) {
  return instance.total_min_work() /
         static_cast<double>(instance.num_machines());
}

Cost two_cluster_fractional_opt(const Instance& instance) {
  std::vector<JobId> all(instance.num_jobs());
  std::iota(all.begin(), all.end(), 0);
  return two_cluster_fractional_opt(instance, all);
}

Cost two_cluster_fractional_opt(const Instance& instance,
                                std::span<const JobId> jobs) {
  if (instance.num_groups() != 2 || !instance.unit_scales()) {
    throw std::invalid_argument(
        "two_cluster_fractional_opt: needs two clusters with unit scales");
  }
  const auto m1 =
      static_cast<double>(instance.machines_in_group(0).size());
  const auto m2 =
      static_cast<double>(instance.machines_in_group(1).size());

  std::vector<JobId> order(jobs.begin(), jobs.end());
  std::sort(order.begin(), order.end(), [&](JobId a, JobId b) {
    // Increasing p1/p2 ratio == cross-multiplied to avoid division.
    return instance.group_cost(0, a) * instance.group_cost(1, b) <
           instance.group_cost(0, b) * instance.group_cost(1, a);
  });

  // Start with everything on cluster 2; move ratio-ordered jobs to cluster 1
  // one at a time, allowing a fractional split of the crossing job.
  double work1 = 0.0;
  double work2 = 0.0;
  for (JobId j : order) work2 += instance.group_cost(1, j);

  auto value = [&](double w1, double w2) {
    return std::max(w1 / m1, w2 / m2);
  };

  double best = value(work1, work2);
  for (JobId idx : order) {
    const double a = instance.group_cost(0, idx);
    const double b = instance.group_cost(1, idx);
    // Optimal split fraction of this job equalises the two sides.
    const double denom = a * m2 + b * m1;
    double x = (work2 * m1 - work1 * m2) / denom;
    x = std::clamp(x, 0.0, 1.0);
    best = std::min(best, value(work1 + x * a, work2 - x * b));
    work1 += a;
    work2 -= b;
    best = std::min(best, value(work1, work2));
  }
  return best;
}

Cost makespan_lower_bound(const Instance& instance) {
  Cost bound = std::max(max_min_cost_bound(instance),
                        min_work_bound(instance));
  // The fractional bound divides by each cluster's machine count, so it
  // only applies when both clusters actually have machines.
  if (instance.num_groups() == 2 && instance.unit_scales() &&
      !instance.machines_in_group(0).empty() &&
      !instance.machines_in_group(1).empty()) {
    bound = std::max(bound, two_cluster_fractional_opt(instance));
  }
  return bound;
}

}  // namespace dlb
