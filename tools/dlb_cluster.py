#!/usr/bin/env python3
"""Launch and drive a multi-process dlbd cluster.

Modes:
  run           launch a cluster, wait for the protocol to finish, print
                the combined status.
  differential  run the cluster AND the simulated reference
                (`dlbsim transport`) on the same instance/seed/rounds;
                fail unless per-machine loads are byte-identical and the
                migration/exchange totals match.
  chaos         differential with a fault plan injected into every
                daemon's socket transport (the sim reference stays
                fault-free); additionally asserts protocol invariants:
                job conservation (no loss, no double-commit) and
                exchanges <= TRANSFER frames sent.
  kill          SIGKILL one daemon mid-run, then recover on the
                survivors: mark-dead its machines, adopt the orphaned
                jobs (PR 5 churn re-dispatch), re-inject the session
                token, and assert the survivors finish with every job
                placed exactly once.
  scrape        run the cluster --runs times (same seed), pull every
                daemon's metrics / Prometheus scrape / trace / flight
                recorder over the command channel into --out-dir, merge
                them with `dlbsim trace-merge` / `dlbsim metrics-merge`
                (the merged trace must pass causal validation and span
                hosts), and assert the stable cluster metrics view is
                byte-identical across the runs.
  top           poll the daemons' status while the protocol runs and
                render a live convergence dashboard; on completion plot
                the flight-recorder series via `dlbsim flight`.

Example:
  python3 tools/dlb_cluster.py differential \
      --dlbd build/tools/dlbd --dlbsim build/tools/dlbsim \
      --daemons 4 --transport unix --seed 7 --rounds 6
"""

import argparse
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time


def log(message):
    print(f"dlb_cluster: {message}", flush=True)


def free_tcp_port():
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class Daemon:
    """One dlbd process driven over its stdin/stdout command channel."""

    def __init__(self, idx, cmd, log_path):
        self.idx = idx
        self.log_path = log_path
        self.log_file = open(log_path, "w")
        self.proc = subprocess.Popen(
            cmd,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=self.log_file,
            text=True,
            bufsize=1,
        )

    def wait_ready(self):
        line = self.proc.stdout.readline()
        if line.strip() != "ready":
            raise RuntimeError(
                f"daemon {self.idx} failed to start (got {line!r}); "
                f"see {self.log_path}"
            )

    def command(self, line):
        """Sends one command; returns its data lines (terminator
        stripped). Raises on an error reply or a dead daemon."""
        self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()
        reply = []
        while True:
            out = self.proc.stdout.readline()
            if not out:
                raise RuntimeError(
                    f"daemon {self.idx} closed its command channel; "
                    f"see {self.log_path}"
                )
            out = out.rstrip("\n")
            if out == "ok":
                return reply
            if out.startswith("error:"):
                raise RuntimeError(f"daemon {self.idx}: {out}")
            reply.append(out)

    def kill(self):
        self.proc.kill()
        self.proc.wait()

    def shutdown(self):
        if self.proc.poll() is not None:
            return
        try:
            self.command("shutdown")
        except (RuntimeError, BrokenPipeError, OSError):
            pass
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:
            self.kill()

    def close(self):
        if self.proc.poll() is None:
            self.kill()
        self.log_file.close()


def parse_status(lines):
    status = {"machines": {}}
    for line in lines:
        fields = line.split()
        if fields[0] == "state":
            status["state"] = fields[1]
        elif fields[0] == "watermark":
            status["watermark"] = int(fields[1])
            status["total"] = int(fields[3])
        elif fields[0] == "migrations":
            status["migrations"] = int(fields[1])
        elif fields[0] == "exchanges":
            status["exchanges"] = int(fields[1])
        elif fields[0] == "transfers":
            status["transfers_sent"] = int(fields[1])
            status["transfers_applied"] = int(fields[3])
        elif fields[0] == "faults":
            status["faults"] = line
        elif fields[0] == "machine":
            machine = int(fields[1])
            load = fields[2].split("=", 1)[1]
            jobs = int(fields[3].split("=", 1)[1])
            status["machines"][machine] = (load, jobs)
    return status


def parse_jobs(lines):
    jobs = {}
    for line in lines:
        head, _, rest = line.partition(":")
        machine = int(head.split()[1])
        jobs[machine] = [int(j) for j in rest.split()]
    return jobs


def parse_reference(text):
    reference = {"machines": {}}
    for line in text.splitlines():
        match = re.match(r"(\w[\w ]*?)\s*: (.*)", line)
        if not match:
            continue
        key, value = match.group(1), match.group(2)
        if key == "migrations":
            reference["migrations"] = int(value)
        elif key == "exchanges":
            reference["exchanges"] = int(value)
        elif key == "cmax":
            reference["cmax"] = value
        elif key.startswith("load "):
            machine = int(key.split()[1])
            load, jobs = value.split(" jobs=")
            reference["machines"][machine] = (load, int(jobs))
    return reference


class Cluster:
    def __init__(self, args, workdir):
        self.args = args
        self.workdir = workdir
        self.daemons = []
        self.run_tag = ""
        self.instance = args.instance
        if not self.instance:
            self.instance = os.path.join(workdir, "cluster.inst")
            subprocess.run(
                [
                    args.dlbsim, "gen", "--out", self.instance,
                    "--kind", "two-cluster",
                    "--m1", str(args.machines // 2),
                    "--m2", str(args.machines - args.machines // 2),
                    "--jobs", str(args.jobs),
                    "--seed", str(args.gen_seed),
                ],
                check=True,
                stdout=subprocess.DEVNULL,
            )
        self.manifest = self.build_manifest()

    def build_manifest(self):
        entries = []
        m, n = self.args.machines, self.args.daemons
        for i in range(n):
            lo, hi = i * m // n, (i + 1) * m // n - 1
            if self.args.transport == "unix":
                address = f"unix:{self.workdir}/{self.run_tag}d{i}.sock"
            else:
                address = f"tcp:127.0.0.1:{free_tcp_port()}"
            entries.append(f"{address}={lo}-{hi}")
        return ",".join(entries)

    def reset(self, tag):
        """Prepare a fresh same-seed launch (new sockets, same plan)."""
        self.daemons = []
        self.run_tag = tag
        self.manifest = self.build_manifest()

    def launch(self, fault="none", trace=False):
        for i in range(self.args.daemons):
            cmd = [
                self.args.dlbd,
                "--in", self.instance,
                "--hosts", self.manifest,
                "--self", str(i),
                "--alg", self.args.alg,
                "--seed", str(self.args.seed),
                "--rounds", str(self.args.rounds),
                "--retry-timeout", str(self.args.retry_timeout),
                "--fault", fault,
                "--fault-p", str(self.args.fault_p),
                "--fault-seed", str(self.args.fault_seed),
            ]
            if trace:
                cmd.append("--trace")
            log_path = os.path.join(
                self.args.log_dir, f"dlbd-{self.run_tag}{i}.log"
            )
            self.daemons.append(Daemon(i, cmd, log_path))
        for daemon in self.daemons:
            daemon.wait_ready()
        log(f"{len(self.daemons)} daemons ready ({self.args.transport})")

    def survivors(self):
        return [d for d in self.daemons if d.proc.poll() is None]

    def wait_done(self, deadline):
        while time.time() < deadline:
            states = [
                parse_status(d.command("status"))
                for d in self.survivors()
            ]
            if all(s["state"] == "done" for s in states):
                return states
            time.sleep(0.1)
        raise RuntimeError("timed out waiting for the protocol to finish")

    def combined(self, states):
        machines = {}
        for state in states:
            machines.update(state["machines"])
        return {
            "machines": machines,
            "migrations": sum(s["migrations"] for s in states),
            "exchanges": sum(s["exchanges"] for s in states),
            "transfers_sent": sum(s["transfers_sent"] for s in states),
        }

    def all_jobs(self):
        placed = {}
        for daemon in self.survivors():
            for machine, jobs in parse_jobs(
                daemon.command("jobs")
            ).items():
                placed[machine] = jobs
        return placed

    def teardown(self):
        for daemon in self.daemons:
            daemon.shutdown()
        for daemon in self.daemons:
            daemon.close()


def check_conservation(placed, num_jobs):
    """Every job exactly once: catches both loss and double-commit."""
    seen = {}
    for machine, jobs in placed.items():
        for job in jobs:
            if job in seen:
                raise RuntimeError(
                    f"job {job} is on machines {seen[job]} and {machine}"
                    " (double-commit)"
                )
            seen[job] = machine
    missing = [j for j in range(num_jobs) if j not in seen]
    if missing:
        raise RuntimeError(f"{len(missing)} jobs lost: {missing[:10]}...")


def run_reference(args):
    result = subprocess.run(
        [
            args.dlbsim, "transport",
            "--in", args.instance,
            "--alg", args.alg,
            "--seed", str(args.seed),
            "--rounds", str(args.rounds),
        ],
        check=True,
        capture_output=True,
        text=True,
    )
    return parse_reference(result.stdout)


def compare(reference, combined):
    failures = []
    for machine, (load, jobs) in sorted(reference["machines"].items()):
        got = combined["machines"].get(machine)
        if got is None:
            failures.append(f"machine {machine}: missing from cluster")
        elif got != (load, jobs):
            failures.append(
                f"machine {machine}: cluster load={got[0]} jobs={got[1]}"
                f" != reference load={load} jobs={jobs}"
            )
    for key in ("migrations", "exchanges"):
        if reference[key] != combined[key]:
            failures.append(
                f"{key}: cluster {combined[key]} != "
                f"reference {reference[key]}"
            )
    return failures


def mode_run(cluster, args, deadline):
    cluster.launch()
    states = cluster.wait_done(deadline)
    combined = cluster.combined(states)
    log(
        f"done: exchanges={combined['exchanges']} "
        f"migrations={combined['migrations']}"
    )
    return 0


def mode_differential(cluster, args, deadline, fault="none"):
    cluster.launch(fault=fault)
    states = cluster.wait_done(deadline)
    combined = cluster.combined(states)
    args.instance = cluster.instance
    reference = run_reference(args)
    failures = compare(reference, combined)

    if fault != "none":
        check_conservation(cluster.all_jobs(), args.jobs)
        if combined["exchanges"] > combined["transfers_sent"]:
            failures.append(
                f"invariant broken: exchanges {combined['exchanges']} > "
                f"TRANSFER frames {combined['transfers_sent']}"
            )
        for state in states:
            log(f"chaos: {state.get('faults', 'faults none')}")

    if failures:
        for failure in failures:
            log(f"MISMATCH: {failure}")
        return 1
    log(
        f"match: {len(reference['machines'])} machines byte-identical, "
        f"migrations={combined['migrations']} "
        f"exchanges={combined['exchanges']}"
    )
    return 0


def mode_kill(cluster, args, deadline):
    cluster.launch()
    victim = cluster.daemons[-1]
    victim_machines = None

    # Let the protocol reach the midpoint before pulling the plug.
    while time.time() < deadline:
        status = parse_status(cluster.daemons[0].command("status"))
        if status["watermark"] >= status["total"] // 2:
            break
        if status["state"] == "done":
            break
        time.sleep(0.05)
    victim_status = parse_status(victim.command("status"))
    victim_machines = sorted(victim_status["machines"])
    victim.kill()
    log(f"killed daemon {victim.idx} (machines {victim_machines})")

    survivors = cluster.survivors()
    for daemon in survivors:
        for machine in victim_machines:
            daemon.command(f"mark-dead {machine}")

    # Orphans = every job no survivor holds; adopt them onto the first
    # surviving machine (the churn runtime's re-dispatch, operator
    # edition).
    placed = cluster.all_jobs()
    held = {job for jobs in placed.values() for job in jobs}
    orphans = [j for j in range(args.jobs) if j not in held]
    adopter = survivors[0]
    target = min(parse_status(adopter.command("status"))["machines"])
    if orphans:
        adopter.command(
            "adopt " + str(target) + " " + " ".join(map(str, orphans))
        )
    log(f"adopted {len(orphans)} orphans onto machine {target}")

    # Re-inject the token in case it died with the victim.
    watermark = max(
        parse_status(d.command("status"))["watermark"] for d in survivors
    )
    adopter.command(f"inject {watermark}")
    log(f"token re-injected at session {watermark}")

    states = cluster.wait_done(deadline)
    check_conservation(cluster.all_jobs(), args.jobs)
    combined = cluster.combined(states)
    log(
        f"survivors finished: exchanges={combined['exchanges']} "
        f"migrations={combined['migrations']}, all {args.jobs} jobs "
        "placed exactly once"
    )
    return 0


def pull_command(daemon, command, out_path):
    """Pulls one command's reply and writes it verbatim to a file."""
    text = "\n".join(daemon.command(command))
    with open(out_path, "w") as handle:
        handle.write(text + "\n" if text else "")
    return out_path


def mode_scrape(cluster, args, deadline):
    """The cluster observability pipeline, run --runs times: scrape every
    daemon, merge, validate causality, and assert that the deterministic
    (stable) slice of the merged metrics is byte-identical across runs."""
    out_dir = args.out_dir or os.path.join(args.log_dir, "scrape")
    stable_bytes = []
    for run in range(args.runs):
        run_dir = os.path.join(out_dir, f"run{run}")
        os.makedirs(run_dir, exist_ok=True)
        if run > 0:
            cluster.reset(f"r{run}-")
        cluster.launch(trace=True)
        cluster.wait_done(deadline)

        metrics, traces = [], []
        for daemon in cluster.daemons:
            idx = daemon.idx
            metrics.append(pull_command(
                daemon, "metrics",
                os.path.join(run_dir, f"metrics-{idx}.json")))
            pull_command(
                daemon, "scrape",
                os.path.join(run_dir, f"scrape-{idx}.prom"))
            traces.append(pull_command(
                daemon, "trace",
                os.path.join(run_dir, f"trace-{idx}.json")))
            pull_command(
                daemon, "flight",
                os.path.join(run_dir, f"flight-{idx}.json"))
        cluster.teardown()

        merged_trace = os.path.join(run_dir, "cluster-trace.json")
        merge = subprocess.run(
            [args.dlbsim, "trace-merge",
             "--in", ",".join(traces), "--out", merged_trace],
            capture_output=True, text=True,
        )
        print(merge.stdout, end="", flush=True)
        if merge.returncode != 0:
            raise RuntimeError(
                f"run {run}: merged trace failed causal validation:\n"
                + merge.stdout + merge.stderr
            )
        match = re.search(r"\((\d+) cross-host\)", merge.stdout)
        if not match or int(match.group(1)) == 0:
            raise RuntimeError(
                f"run {run}: no cross-host sessions in the merged trace"
            )

        stable_path = os.path.join(run_dir, "cluster-stable.json")
        subprocess.run(
            [args.dlbsim, "metrics-merge",
             "--in", ",".join(metrics),
             "--out", os.path.join(run_dir, "cluster-metrics.json"),
             "--stable-out", stable_path,
             "--prom", os.path.join(run_dir, "cluster-metrics.prom")],
            check=True, capture_output=True, text=True,
        )
        with open(stable_path, "rb") as handle:
            stable_bytes.append(handle.read())
        log(f"run {run}: scraped {len(cluster.daemons)} daemons into "
            f"{run_dir}")

    for run, data in enumerate(stable_bytes[1:], start=1):
        if data != stable_bytes[0]:
            raise RuntimeError(
                f"stable cluster view of run {run} differs from run 0 "
                "(determinism broken)"
            )
    if args.runs > 1:
        log(f"stable cluster view byte-identical across {args.runs} runs")
    return 0


def mode_top(cluster, args, deadline):
    cluster.launch()
    daemons = cluster.daemons
    while time.time() < deadline:
        states = [parse_status(d.command("status")) for d in daemons]
        loads = [
            float(load)
            for s in states
            for load, _jobs in s["machines"].values()
        ]
        cmax, cmin = max(loads), min(loads)
        rows = []
        for daemon, state in zip(daemons, states):
            total = max(state["total"], 1)
            fill = 20 * state["watermark"] // total
            rows.append(
                f"dlbd[{daemon.idx}] [{'#' * fill}{'.' * (20 - fill)}] "
                f"{state['watermark']}/{state['total']} "
                f"{state['state']:<8} exchanges={state['exchanges']}"
            )
        print("\n".join(rows), flush=True)
        print(
            f"cmax={cmax:.2f} imbalance={cmax - cmin:.2f}",
            flush=True,
        )
        if all(s["state"] == "done" for s in states):
            break
        time.sleep(args.interval)
    else:
        raise RuntimeError("timed out waiting for the protocol to finish")

    flight_path = os.path.join(args.log_dir, "flight-0.json")
    pull_command(daemons[0], "flight", flight_path)
    subprocess.run(
        [args.dlbsim, "flight", "--in", flight_path], check=False
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "mode",
        choices=["run", "differential", "chaos", "kill", "scrape", "top"],
    )
    parser.add_argument("--dlbd", required=True)
    parser.add_argument("--dlbsim", required=True)
    parser.add_argument("--daemons", type=int, default=4)
    parser.add_argument(
        "--transport", choices=["unix", "tcp"], default="unix"
    )
    parser.add_argument("--machines", type=int, default=8)
    parser.add_argument("--jobs", type=int, default=96)
    parser.add_argument("--instance", default="")
    parser.add_argument("--gen-seed", type=int, default=3)
    parser.add_argument("--alg", default="dlb2c")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--rounds", type=int, default=6)
    parser.add_argument("--retry-timeout", type=float, default=0.5)
    parser.add_argument("--fault", default="chaos")
    parser.add_argument("--fault-p", type=float, default=0.1)
    parser.add_argument("--fault-seed", type=int, default=99)
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--log-dir", default="")
    parser.add_argument("--out-dir", default="", help="scrape artifacts")
    parser.add_argument(
        "--runs", type=int, default=2,
        help="scrape repetitions for the determinism assertion",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5, help="top refresh period"
    )
    args = parser.parse_args()

    if args.daemons < 2 or args.machines < args.daemons:
        parser.error("need >= 2 daemons and >= 1 machine per daemon")

    with tempfile.TemporaryDirectory(prefix="dlb_cluster.") as workdir:
        if not args.log_dir:
            args.log_dir = workdir
        os.makedirs(args.log_dir, exist_ok=True)
        deadline = time.time() + args.timeout
        cluster = Cluster(args, workdir)
        try:
            if args.mode == "run":
                return mode_run(cluster, args, deadline)
            if args.mode == "differential":
                return mode_differential(cluster, args, deadline)
            if args.mode == "chaos":
                return mode_differential(
                    cluster, args, deadline, fault=args.fault
                )
            if args.mode == "scrape":
                return mode_scrape(cluster, args, deadline)
            if args.mode == "top":
                return mode_top(cluster, args, deadline)
            return mode_kill(cluster, args, deadline)
        except Exception as error:  # noqa: BLE001 - report and fail the job
            log(f"FAILED: {error}")
            for daemon in cluster.daemons:
                if not daemon.log_file.closed:
                    daemon.log_file.flush()
                if os.path.exists(daemon.log_path):
                    with open(daemon.log_path) as handle:
                        tail = handle.readlines()[-15:]
                    log(f"--- log tail of daemon {daemon.idx} ---")
                    for line in tail:
                        print("  " + line.rstrip(), flush=True)
            return 1
        finally:
            cluster.teardown()


if __name__ == "__main__":
    sys.exit(main())
