#!/usr/bin/env python3
"""Gate the parallel exchange engine's thread scaling.

Usage:
    check_parallel_speedup.py SERIAL.json PARALLEL.json [options]

Both inputs are timed `dlb_bench --json` documents (schema "dlb-bench") of
the same experiment run at different `--threads` values — in CI, 1 and 8.
The gate computes

    speedup = serial median wall time / parallel median wall time

and fails (exit 1) when it falls below --min-speedup. Exit 2 means
malformed input.

Two things are checked besides the ratio:

  * determinism — the experiment's metrics and counters must be identical
    between the two documents. A parallel run that changes the science is
    a correctness bug, not a perf result, and fails immediately;
  * honesty about cores — when the parallel document reports fewer
    hardware threads than --threads-needed (CI runners vary; laptops and
    1-core containers cannot exhibit any speedup), the ratio check is
    SKIPPED with a notice rather than failed, exactly like the timing leg
    of the obs-overhead gate. The determinism check always runs.

The floor is deliberately below the ideal ratio: the target for 8 threads
is >= --min-speedup (default 4.0), conceding scheduling noise, the
sequential plan/commit phases (Amdahl) and shared-runner interference.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA = "dlb-bench"


def fail_input(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_document(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        fail_input(f"cannot read {path}: {exc}")
    if doc.get("schema") != SCHEMA:
        fail_input(f"{path}: not a {SCHEMA} document")
    return doc


def experiment(doc: dict, path: str, name: str) -> dict:
    for entry in doc.get("experiments", []):
        if entry.get("name") == name:
            if entry.get("status") != "ok":
                fail_input(f"{path}: experiment '{name}' status is "
                           f"{entry.get('status')!r}, not 'ok'")
            return entry
    fail_input(f"{path}: no experiment named '{name}'")
    raise AssertionError  # unreachable


def median_wall_s(entry: dict, path: str) -> float:
    timing = entry.get("timing")
    if not isinstance(timing, dict):
        fail_input(f"{path}: experiment carries no timing block "
                   "(was it run with --no-timing?)")
    median = timing.get("wall_s", {}).get("median")
    if not isinstance(median, (int, float)) or median <= 0:
        fail_input(f"{path}: missing or non-positive wall_s.median")
    return float(median)


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Gate parallel-engine speedup between two timed "
        "dlb_bench documents.")
    parser.add_argument("serial", help="timed JSON from the --threads 1 run")
    parser.add_argument("parallel",
                        help="timed JSON from the --threads N run")
    parser.add_argument("--experiment", default="perf_parallel_engine",
                        help="experiment name to compare "
                        "(default: %(default)s)")
    parser.add_argument("--min-speedup", type=float, default=4.0,
                        help="fail when serial/parallel median wall time "
                        "is below this (default: %(default)s)")
    parser.add_argument("--threads-needed", type=int, default=8,
                        help="skip the ratio check (determinism still "
                        "gated) when the parallel run's machine has fewer "
                        "hardware threads than this (default: %(default)s)")
    args = parser.parse_args()

    serial_doc = load_document(args.serial)
    parallel_doc = load_document(args.parallel)
    serial = experiment(serial_doc, args.serial, args.experiment)
    parallel = experiment(parallel_doc, args.parallel, args.experiment)

    # Determinism first: thread count must not change the science.
    for block in ("metrics", "counters"):
        if serial.get(block, {}) != parallel.get(block, {}):
            print(f"FAIL: {args.experiment}: {block} differ between the "
                  "serial and parallel runs — the engine is not "
                  "thread-count invariant", file=sys.stderr)
            return 1
    print(f"ok: {args.experiment}: metrics and counters identical across "
          "thread counts")

    cores = parallel_doc.get("environment", {}).get("hardware_concurrency")
    if isinstance(cores, int) and cores < args.threads_needed:
        print(f"SKIP: ratio check needs >= {args.threads_needed} hardware "
              f"threads, machine reports {cores}; speedup not measurable "
              "here")
        return 0

    serial_s = median_wall_s(serial, args.serial)
    parallel_s = median_wall_s(parallel, args.parallel)
    speedup = serial_s / parallel_s
    verdict = "ok" if speedup >= args.min_speedup else "FAIL"
    print(f"{verdict}: {args.experiment}: {serial_s * 1e3:.1f} ms serial / "
          f"{parallel_s * 1e3:.1f} ms parallel = {speedup:.2f}x "
          f"(floor {args.min_speedup:.2f}x)")
    return 0 if speedup >= args.min_speedup else 1


if __name__ == "__main__":
    sys.exit(main())
