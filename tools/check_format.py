#!/usr/bin/env python3
"""Compiler-free source hygiene lint (complements clang-format in CI).

Checks every C++ source/header plus the CMake/Python/Markdown files for the
violations clang-format cannot fix or that survive it: tab indentation,
trailing whitespace, CRLF line endings, a missing final newline, and C++
lines over the 80-column limit from .clang-format. Exit 1 on any finding.

Usage: check_format.py [ROOT]   (default: the repository root)
"""

from __future__ import annotations

import pathlib
import sys

CXX_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}
TEXT_SUFFIXES = CXX_SUFFIXES | {".py", ".txt", ".cmake", ".md", ".yml"}
SOURCE_DIRS = ["src", "bench", "tests", "examples", "tools"]
COLUMN_LIMIT = 80


def check_file(path: pathlib.Path, problems: list[str]) -> None:
    data = path.read_bytes()
    if not data:
        return
    if b"\r" in data:
        problems.append(f"{path}: CRLF line ending")
    if not data.endswith(b"\n"):
        problems.append(f"{path}: missing final newline")
    is_cxx = path.suffix in CXX_SUFFIXES
    for lineno, line in enumerate(data.decode("utf-8").splitlines(), start=1):
        if line.rstrip() != line:
            problems.append(f"{path}:{lineno}: trailing whitespace")
        if is_cxx and line.startswith("\t"):
            problems.append(f"{path}:{lineno}: tab indentation")
        if is_cxx and len(line) > COLUMN_LIMIT:
            problems.append(
                f"{path}:{lineno}: {len(line)} columns (limit {COLUMN_LIMIT})"
            )


def main() -> int:
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".")
    files: list[pathlib.Path] = []
    for directory in SOURCE_DIRS:
        base = root / directory
        if base.is_dir():
            files.extend(
                p
                for p in sorted(base.rglob("*"))
                if p.is_file() and p.suffix in TEXT_SUFFIXES
            )

    problems: list[str] = []
    for path in files:
        check_file(path, problems)

    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        print(f"{len(problems)} problem(s) in {len(files)} files", file=sys.stderr)
        return 1
    print(f"ok: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
