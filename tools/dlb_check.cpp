// dlb_check: the property-based correctness harness. Generates seeded
// random instances across every cost regime, runs the full oracle battery
// (structural invariants, kernel contracts, convergence detection, network
// fault tolerance, and the paper's approximation theorems against exact
// optima), shrinks whatever fails, and exits non-zero with a replayable
// reproducer. CI runs `dlb_check --cases 10000 --seed 42` as the fuzz
// gate; see docs/testing.md for the full workflow.

#include <cstdint>
#include <exception>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/case_gen.hpp"
#include "check/suite.hpp"
#include "cli/args.hpp"

namespace {

constexpr const char* kUsage = R"(usage: dlb_check [options]

Property-based correctness harness: seeded random instances across every
cost regime, checked against the library's invariant oracles.

options:
  --cases N          number of generated cases (default 1000)
  --seed S           base seed; every case derives from it (default 42)
  --regime NAME      pin one regime: identical | related | two_cluster |
                     multi_cluster | unrelated | typed | single_type |
                     extreme_ratio | degenerate (default: cycle through all)
  --faults NAME      fault plan for async runs: rotate | none | drop |
                     delay | duplicate | reorder | chaos (default rotate)
  --fault-p P        per-message fault probability (default 0.15)
  --no-shrink        report failures without minimizing them
  --dump DIR         write failing cases to DIR as replayable
                     .instance/.assignment files
  --max-failures N   stop after N failing cases (default 10)
  --verbose          print a progress line every 1000 cases
)";

int run(const dlb::cli::Args& args) {
  dlb::check::SuiteOptions options;
  options.cases = static_cast<std::uint64_t>(args.get_int("cases", 1000));
  options.seed = args.get_seed("seed", 42);
  options.faults = args.get("faults", "rotate");
  options.fault_p = args.get_double("fault-p", 0.15);
  options.shrink_failures = !args.has("no-shrink");
  options.dump_dir = args.get("dump", "");
  options.max_failures =
      static_cast<std::size_t>(args.get_int("max-failures", 10));
  const bool verbose = args.has("verbose");
  const std::string regime = args.get("regime", "");
  if (!regime.empty()) {
    options.regime = dlb::check::regime_by_name(regime);
  }
  for (const std::string& key : args.unused()) {
    std::cerr << "dlb_check: unknown option --" << key << "\n" << kUsage;
    return 2;
  }

  if (verbose) {
    std::cout << "dlb_check: " << options.cases << " cases, seed "
              << options.seed << ", faults " << options.faults << "\n";
  }
  const dlb::check::SuiteSummary summary = dlb::check::run_suite(options);

  std::cout << "dlb_check: " << summary.cases_run << " cases ("
            << summary.exact_solved << " vs exact OPT, "
            << summary.engine_runs << " engine runs, " << summary.async_runs
            << " async runs)\n"
            << "dlb_check: injected faults: " << summary.faults.dropped
            << " dropped, " << summary.faults.delayed << " delayed, "
            << summary.faults.duplicated << " duplicated, "
            << summary.faults.reordered << " reordered\n";

  if (summary.ok()) {
    std::cout << "dlb_check: all oracles passed\n";
    return 0;
  }
  for (const dlb::check::CaseFailure& failure : summary.failures) {
    std::cout << "\nFAIL " << failure.name << " (replay: --seed "
              << options.seed << " plus case index " << failure.index
              << "; shrunk to " << failure.shrunk_jobs << " jobs / "
              << failure.shrunk_machines << " machines)\n"
              << failure.report;
    if (!failure.repro_path.empty()) {
      std::cout << "repro written to " << failure.repro_path << "\n";
    }
  }
  std::cout << "\ndlb_check: " << summary.failures.size()
            << " failing case(s)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);
  if (!tokens.empty() && (tokens[0] == "help" || tokens[0] == "--help")) {
    std::cout << kUsage;
    return 0;
  }
  try {
    return run(dlb::cli::Args::parse(tokens));
  } catch (const std::exception& e) {
    std::cerr << "dlb_check: " << e.what() << "\n" << kUsage;
    return 2;
  }
}
