// dlb_check: the property-based correctness harness. Generates seeded
// random instances across every cost regime, runs the full oracle battery
// (structural invariants, kernel contracts, convergence detection, network
// fault tolerance, and the paper's approximation theorems against exact
// optima), shrinks whatever fails, and exits non-zero with a replayable
// reproducer. CI runs `dlb_check --cases 10000 --seed 42` as the fuzz
// gate; see docs/testing.md for the full workflow.

#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "check/case_gen.hpp"
#include "check/suite.hpp"
#include "cli/args.hpp"
#include "core/instance_io.hpp"
#include "core/instance_store.hpp"
#include "dist/open_system/arrival.hpp"

namespace {

constexpr const char* kUsage = R"(usage: dlb_check [options]
       dlb_check replay FILE... [--seed S] [--index I] [--faults NAME]

Property-based correctness harness: seeded random instances across every
cost regime, checked against the library's invariant oracles.

The replay form runs the full oracle battery on saved reproducer files
instead of generated cases: each FILE is a .inst/.instance dump; a
sibling .assign/.assignment file supplies the initial placement (falling
back to round-robin) and a sibling .arrivals file restores the
open-system arrival plan. tests/corpus/ holds the regression corpus.

options:
  --cases N          number of generated cases (default 1000)
  --seed S           base seed; every case derives from it (default 42)
  --regime NAME      pin one regime: identical | related | two_cluster |
                     multi_cluster | unrelated | typed | single_type |
                     extreme_ratio | degenerate | stochastic_normal |
                     stochastic_lognormal | stochastic_pareto |
                     open_poisson | open_bursty
                     (default: cycle through all)
  --faults NAME      fault plan for async runs: rotate | none | drop |
                     delay | duplicate | reorder | chaos (default rotate)
  --fault-p P        per-message fault probability (default 0.15)
  --no-shrink        report failures without minimizing them
  --dump DIR         write failing cases to DIR as replayable
                     .instance/.assignment files
  --max-failures N   stop after N failing cases (default 10)
  --verbose          print a progress line every 1000 cases
)";

/// The reproducer path with its instance extension trimmed, for locating
/// sidecar files.
std::string stem_of(std::string path) {
  for (const char* ext : {".instance", ".inst"}) {
    const std::string suffix(ext);
    if (path.size() > suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) ==
            0) {
      path.resize(path.size() - suffix.size());
      break;
    }
  }
  return path;
}

/// The companion assignment for a reproducer: the same stem with the
/// matching assignment extension, or round-robin when no such file exists.
dlb::Assignment initial_for(const std::string& instance_path,
                            const dlb::Instance& instance) {
  const std::string stem = stem_of(instance_path);
  for (const char* ext : {".assignment", ".assign"}) {
    std::ifstream in(stem + ext);
    if (in) return dlb::io::load_assignment(in);
  }
  return dlb::Assignment::round_robin(instance.num_jobs(),
                                      instance.num_machines());
}

/// The companion arrival plan (open-regime reproducers); trivial when the
/// sidecar file does not exist.
dlb::dist::ArrivalPlan arrivals_for(const std::string& instance_path) {
  std::ifstream in(stem_of(instance_path) + ".arrivals");
  if (!in) return dlb::dist::ArrivalPlan{};
  return dlb::dist::ArrivalPlan::load(in);
}

/// `dlb_check replay FILE...`: the regression-corpus gate. Every saved
/// reproducer must pass the battery it once failed.
int run_replay(const std::vector<std::string>& tokens) {
  std::vector<std::string> files;
  std::vector<std::string> flags;
  for (const std::string& token : tokens) {
    (token.rfind("--", 0) == 0 || !flags.empty() ? flags : files)
        .push_back(token);
  }
  const dlb::cli::Args args = dlb::cli::Args::parse(flags);
  if (files.empty()) {
    std::cerr << "dlb_check replay: no reproducer files given\n" << kUsage;
    return 2;
  }

  dlb::check::CaseContext context;
  context.seed = args.get_seed("seed", 42);
  context.index = static_cast<std::uint64_t>(args.get_int("index", 0));
  const std::string fault_name = args.get("faults", "none");
  const dlb::net::FaultPlan plan = dlb::net::fault_plan_by_name(
      fault_name, args.get_double("fault-p", 0.15), context.seed ^ 0xFA17u);
  if (!plan.trivial()) context.fault_plan = &plan;
  for (const std::string& key : args.unused()) {
    std::cerr << "dlb_check replay: unknown option --" << key << "\n"
              << kUsage;
    return 2;
  }

  int failures = 0;
  for (const std::string& path : files) {
    const dlb::core::InstanceStore store = dlb::core::load_instance(path);
    const dlb::Instance& instance = store.instance();
    // A .dlbi reproducer can embed its initial assignment; sidecar
    // .assignment files keep working for text cases.
    const dlb::Assignment initial = store.has_initial_assignment()
                                        ? store.initial_assignment()
                                        : initial_for(path, instance);
    const dlb::dist::ArrivalPlan arrivals = arrivals_for(path);
    dlb::check::CaseContext case_context = context;
    case_context.arrivals = arrivals.trivial() ? nullptr : &arrivals;
    dlb::check::Report report;
    dlb::check::run_case_oracles(instance, initial, case_context, report,
                                 nullptr);
    if (report.ok()) {
      std::cout << "PASS " << path << "\n";
    } else {
      ++failures;
      std::cout << "FAIL " << path << "\n" << report.to_string();
    }
  }
  std::cout << "dlb_check replay: " << files.size() - failures << "/"
            << files.size() << " reproducers passed\n";
  return failures == 0 ? 0 : 1;
}

int run(const dlb::cli::Args& args) {
  dlb::check::SuiteOptions options;
  options.cases = static_cast<std::uint64_t>(args.get_int("cases", 1000));
  options.seed = args.get_seed("seed", 42);
  options.faults = args.get("faults", "rotate");
  options.fault_p = args.get_double("fault-p", 0.15);
  options.shrink_failures = !args.has("no-shrink");
  options.dump_dir = args.get("dump", "");
  options.max_failures =
      static_cast<std::size_t>(args.get_int("max-failures", 10));
  const bool verbose = args.has("verbose");
  const std::string regime = args.get("regime", "");
  if (!regime.empty()) {
    options.regime = dlb::check::regime_by_name(regime);
  }
  for (const std::string& key : args.unused()) {
    std::cerr << "dlb_check: unknown option --" << key << "\n" << kUsage;
    return 2;
  }

  if (verbose) {
    std::cout << "dlb_check: " << options.cases << " cases, seed "
              << options.seed << ", faults " << options.faults << "\n";
  }
  const dlb::check::SuiteSummary summary = dlb::check::run_suite(options);

  std::cout << "dlb_check: " << summary.cases_run << " cases ("
            << summary.exact_solved << " vs exact OPT, "
            << summary.engine_runs << " engine runs, " << summary.churn_runs
            << " churn runs, " << summary.open_runs << " open runs, "
            << summary.async_runs << " async runs, "
            << summary.stochastic_cases << " stochastic cases)\n"
            << "dlb_check: injected faults: " << summary.faults.dropped
            << " dropped, " << summary.faults.delayed << " delayed, "
            << summary.faults.duplicated << " duplicated, "
            << summary.faults.reordered << " reordered\n";

  if (summary.ok()) {
    std::cout << "dlb_check: all oracles passed\n";
    return 0;
  }
  for (const dlb::check::CaseFailure& failure : summary.failures) {
    std::cout << "\nFAIL " << failure.name << " (replay: --seed "
              << options.seed << " plus case index " << failure.index
              << "; shrunk to " << failure.shrunk_jobs << " jobs / "
              << failure.shrunk_machines << " machines)\n"
              << failure.report;
    if (!failure.repro_path.empty()) {
      std::cout << "repro written to " << failure.repro_path << "\n";
    }
  }
  std::cout << "\ndlb_check: " << summary.failures.size()
            << " failing case(s)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> tokens(argv + 1, argv + argc);
  if (!tokens.empty() && (tokens[0] == "help" || tokens[0] == "--help")) {
    std::cout << kUsage;
    return 0;
  }
  try {
    if (!tokens.empty() && tokens[0] == "replay") {
      return run_replay({tokens.begin() + 1, tokens.end()});
    }
    return run(dlb::cli::Args::parse(tokens));
  } catch (const std::exception& e) {
    std::cerr << "dlb_check: " << e.what() << "\n" << kUsage;
    return 2;
  }
}
