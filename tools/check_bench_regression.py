#!/usr/bin/env python3
"""Gate dlb_bench telemetry against a checked-in baseline.

Usage:
    check_bench_regression.py BASELINE.json FRESH.json [options]

Compares two `dlb_bench --json` documents (schema "dlb-bench"). Exit code is
0 when FRESH is within tolerance of BASELINE on every gated quantity,
1 on any regression, and 2 on malformed input or a schema mismatch.

What is gated:
  * the experiment set — every baseline experiment must be present and "ok";
  * quality metrics — relative deviation beyond --metric-tol fails (these are
    seeded and thread-count invariant, so the default tolerance is tiny and
    only absorbs cross-compiler floating-point noise);
  * work counters — same, with --counter-tol;
  * wall time — only when BOTH documents carry a timing block and
    --timing-tol is given (timing is machine-dependent, so the perf-smoke CI
    job compares deterministic `--no-timing` documents and never gates time);
  * throughput floors — each --min-rate EXPERIMENT:COUNTER:FLOOR requires
    FRESH's timing.rates.<COUNTER>_per_s to be at least FLOOR (an absolute
    lower bound, deliberately far below healthy hardware: it catches
    order-of-magnitude collapses, not noise). Pass the same document as
    both positionals to gate only rate floors.

New experiments present only in FRESH are reported but never fail the gate:
adding a bench must not require regenerating the baseline in the same change
unless its numbers are part of the baseline.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

SCHEMA = "dlb-bench"
SUPPORTED_SCHEMA_VERSIONS = {1}


def input_error(message: str) -> None:
    print(f"error: {message}", file=sys.stderr)
    sys.exit(2)


def load_document(path: str) -> dict:
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        input_error(f"cannot read {path}: {exc}")
    if doc.get("schema") != SCHEMA:
        input_error(f"{path}: not a {SCHEMA} document")
    version = doc.get("schema_version")
    if version not in SUPPORTED_SCHEMA_VERSIONS:
        input_error(
            f"{path}: unsupported schema_version {version!r} "
            f"(supported: {sorted(SUPPORTED_SCHEMA_VERSIONS)})"
        )
    return doc


def by_name(doc: dict) -> dict[str, dict]:
    return {entry["name"]: entry for entry in doc.get("experiments", [])}


def relative_deviation(baseline: float, fresh: float) -> float:
    if baseline == fresh:
        return 0.0
    if math.isnan(baseline) or math.isnan(fresh):
        return math.inf
    scale = max(abs(baseline), abs(fresh))
    if scale == 0.0:
        return 0.0
    return abs(fresh - baseline) / scale


def compare_values(
    name: str,
    kind: str,
    baseline: dict[str, float],
    fresh: dict[str, float],
    tolerance: float,
    failures: list[str],
) -> None:
    for key, base_value in baseline.items():
        if key not in fresh:
            failures.append(f"{name}: {kind} '{key}' missing from fresh run")
            continue
        deviation = relative_deviation(base_value, fresh[key])
        if deviation > tolerance:
            failures.append(
                f"{name}: {kind} '{key}' moved {base_value!r} -> "
                f"{fresh[key]!r} (relative deviation {deviation:.3e} > "
                f"tolerance {tolerance:.3e})"
            )


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument(
        "--metric-tol",
        type=float,
        default=1e-6,
        help="relative tolerance for quality metrics (default: %(default)s)",
    )
    parser.add_argument(
        "--counter-tol",
        type=float,
        default=1e-6,
        help="relative tolerance for work counters (default: %(default)s)",
    )
    parser.add_argument(
        "--timing-tol",
        type=float,
        default=None,
        help="when set, fail if median wall time exceeds baseline by more "
        "than this fraction (e.g. 0.5 = 50%% slower); requires timing "
        "blocks in both documents",
    )
    parser.add_argument(
        "--min-rate",
        action="append",
        default=[],
        metavar="EXPERIMENT:COUNTER:FLOOR",
        help="require FRESH's timing.rates.<COUNTER>_per_s for EXPERIMENT "
        "to be at least FLOOR (repeatable; absolute floor, requires a "
        "timing block in FRESH)",
    )
    args = parser.parse_args()

    min_rates: list[tuple[str, str, float]] = []
    for spec in args.min_rate:
        parts = spec.rsplit(":", 2)
        if len(parts) != 3:
            input_error(f"--min-rate '{spec}': expected EXPERIMENT:COUNTER:FLOOR")
        try:
            min_rates.append((parts[0], parts[1], float(parts[2])))
        except ValueError:
            input_error(f"--min-rate '{spec}': FLOOR must be a number")

    baseline_doc = load_document(args.baseline)
    fresh_doc = load_document(args.fresh)
    baseline = by_name(baseline_doc)
    fresh = by_name(fresh_doc)

    failures: list[str] = []
    for name, base_entry in baseline.items():
        fresh_entry = fresh.get(name)
        if fresh_entry is None:
            failures.append(f"{name}: experiment missing from fresh run")
            continue
        if fresh_entry.get("status") != "ok":
            failures.append(
                f"{name}: status '{fresh_entry.get('status')}'"
                + (
                    f" ({fresh_entry['error']})"
                    if fresh_entry.get("error")
                    else ""
                )
            )
            continue
        if base_entry.get("status") != "ok":
            continue  # baseline recorded a known failure; nothing to gate
        compare_values(
            name,
            "metric",
            base_entry.get("metrics", {}),
            fresh_entry.get("metrics", {}),
            args.metric_tol,
            failures,
        )
        compare_values(
            name,
            "counter",
            base_entry.get("counters", {}),
            fresh_entry.get("counters", {}),
            args.counter_tol,
            failures,
        )
        if args.timing_tol is not None:
            base_timing = base_entry.get("timing", {}).get("wall_s")
            fresh_timing = fresh_entry.get("timing", {}).get("wall_s")
            if base_timing is None or fresh_timing is None:
                failures.append(
                    f"{name}: --timing-tol given but a document lacks timing"
                )
            elif fresh_timing["median"] > base_timing["median"] * (
                1.0 + args.timing_tol
            ):
                failures.append(
                    f"{name}: median wall time {fresh_timing['median']:.4f}s "
                    f"exceeds baseline {base_timing['median']:.4f}s by more "
                    f"than {args.timing_tol:.0%}"
                )

    for experiment, counter, floor in min_rates:
        entry = fresh.get(experiment)
        if entry is None:
            failures.append(
                f"{experiment}: experiment missing from fresh run "
                f"(--min-rate {counter})"
            )
            continue
        if entry.get("status") != "ok":
            continue  # already reported above when gated by the baseline
        rate_key = f"{counter}_per_s"
        rate = entry.get("timing", {}).get("rates", {}).get(rate_key)
        if rate is None:
            failures.append(
                f"{experiment}: timing.rates.{rate_key} absent "
                f"(--min-rate needs a timed document)"
            )
        elif rate < floor:
            failures.append(
                f"{experiment}: {rate_key} {rate:.1f} below floor {floor:.1f}"
            )

    new_experiments = sorted(set(fresh) - set(baseline))
    if new_experiments:
        print(
            "note: experiments not in baseline (not gated): "
            + ", ".join(new_experiments)
        )

    if failures:
        print(f"REGRESSION: {len(failures)} check(s) failed", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    print(
        f"ok: {len(baseline)} baseline experiment(s) within tolerance "
        f"(metric {args.metric_tol:g}, counter {args.counter_tol:g}"
        + (
            f", timing {args.timing_tol:g}" if args.timing_tol is not None else ""
        )
        + ")"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
