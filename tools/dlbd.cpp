// dlbd: the load-balancing daemon binary. One process per host of a real
// deployment; frames travel over TCP or Unix-domain sockets and the
// operator drives the daemon over a line-oriented command channel on
// stdin/stdout (see src/daemon/daemon.hpp for the command table and
// tools/dlb_cluster.py for the launcher that orchestrates a cluster).
//
//   dlbd --in instance.inst \
//        --hosts unix:/tmp/a.sock=0-3,unix:/tmp/b.sock=4-7 --self 1 \
//        [--alg dlb2c] [--seed 1] [--rounds 10] [--retry-timeout 0.5]
//        [--connect-timeout 15] [--fault none|drop|delay|duplicate|
//        reorder|chaos --fault-p P --fault-seed S]
//        [--trace] [--metrics-json FILE] [--trace-json FILE]
//        [--flight-json FILE]
//
// --trace enables the in-memory trace ring (the `trace` command) without
// requiring a shutdown dump path; --trace-json implies it. The *-json
// flags dump metrics / trace / flight-recorder JSON on shutdown.
//
// The daemon prints "ready" on stdout once the mesh is connected and the
// protocol is running, then serves commands until `shutdown` or stdin
// EOF. Logs go to stderr.

#include <csignal>

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/instance_io.hpp"
#include "core/instance_store.hpp"
#include "daemon/daemon.hpp"
#include "net/fault.hpp"
#include "pairwise/kernel_registry.hpp"

namespace {

int run(const std::vector<std::string>& argv) {
  using dlb::cli::Args;
  const Args args = Args::parse(argv);
  const std::string in_path = args.require("in");
  const std::string manifest = args.require("hosts");
  const auto self = static_cast<std::size_t>(args.get_int("self", 0));
  const std::string alg = args.get("alg", "dlb2c");
  const std::uint64_t seed = args.get_seed("seed", 1);
  const auto rounds = static_cast<std::size_t>(args.get_int("rounds", 10));
  const double retry = args.get_double("retry-timeout", 0.5);
  const double connect_timeout = args.get_double("connect-timeout", 15.0);
  const std::string fault_kind = args.get("fault", "none");
  const double fault_p = args.get_double("fault-p", 0.1);
  const std::uint64_t fault_seed = args.get_seed("fault-seed", seed + 1);
  const std::string metrics_path = args.get("metrics-json", "");
  const std::string trace_path = args.get("trace-json", "");
  const std::string flight_path = args.get("flight-json", "");
  const bool trace_on = args.has("trace") || !trace_path.empty();
  for (const auto& key : args.unused()) {
    std::cerr << "dlbd: unknown option --" << key << "\n";
    return 2;
  }

  const dlb::pairwise::KernelRegistry& registry =
      dlb::pairwise::kernel_registry();
  if (!registry.contains(alg)) {
    std::cerr << "dlbd: unknown --alg '" << alg << "' ("
              << registry.names_joined() << ")\n";
    return 2;
  }

  const dlb::core::InstanceStore store = dlb::core::load_instance(in_path);
  const dlb::Instance& instance = store.instance();

  dlb::daemon::DaemonOptions options;
  options.hosts = dlb::daemon::parse_host_manifest(manifest);
  options.self = self;
  options.kernel = &registry.get(alg);
  options.seed = seed;
  options.rounds = rounds;
  options.retry_timeout = retry;
  options.connect_timeout = connect_timeout;
  options.fault =
      dlb::net::fault_plan_by_name(fault_kind, fault_p, fault_seed);
  options.trace = trace_on;

  dlb::daemon::Daemon daemon(instance, options);
  std::cerr << "dlbd[" << self << "] listening on "
            << daemon.transport().listen_address() << ", machines "
            << options.hosts[self].machine_lo << "-"
            << options.hosts[self].machine_hi - 1 << "\n"
            << std::flush;
  daemon.connect_and_start();
  std::cout << "ready\n" << std::flush;
  std::cerr << "dlbd[" << self << "] mesh connected, protocol started\n"
            << std::flush;

  daemon.serve(0, std::cout, std::cerr);

  if (!metrics_path.empty()) {
    std::ofstream file(metrics_path);
    file << daemon.metrics().snapshot().dump(2) << "\n";
  }
  if (!trace_path.empty()) {
    std::ofstream file(trace_path);
    file << daemon.tracer().to_chrome_json().dump(2) << "\n";
  }
  if (!flight_path.empty()) {
    std::ofstream file(flight_path);
    file << daemon.flight().to_json().dump(2) << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A peer (or the launcher) vanishing mid-write must surface as an I/O
  // error, not a process kill.
  std::signal(SIGPIPE, SIG_IGN);
  try {
    return run(std::vector<std::string>(argv + 1, argv + argc));
  } catch (const std::exception& e) {
    std::cerr << "dlbd: " << e.what() << "\n";
    return 1;
  }
}
