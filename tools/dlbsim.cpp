// dlbsim — the command-line entry point to the dlb library: generate
// instances, run centralized or decentralized balancers, dump Markov
// steady-state pdfs. All logic lives in src/cli (unit-tested); this file
// only adapts argv.

#include <iostream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args;
  args.reserve(argc > 0 ? argc - 1 : 0);
  for (int i = 1; i < argc; ++i) args.emplace_back(argv[i]);
  if (args.empty()) args.emplace_back("help");
  return dlb::cli::run_command(args, std::cout, std::cerr);
}
