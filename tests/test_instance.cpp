#include "core/instance.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace dlb {
namespace {

TEST(Instance, IdenticalMachinesShareCosts) {
  const Instance inst = Instance::identical(3, {1.0, 2.0, 5.0});
  EXPECT_EQ(inst.num_machines(), 3u);
  EXPECT_EQ(inst.num_jobs(), 3u);
  EXPECT_EQ(inst.num_groups(), 1u);
  for (MachineId i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(inst.cost(i, 0), 1.0);
    EXPECT_DOUBLE_EQ(inst.cost(i, 2), 5.0);
  }
  EXPECT_TRUE(inst.unit_scales());
}

TEST(Instance, RelatedMachinesScaleBySpeed) {
  const Instance inst = Instance::related({1.0, 2.0, 4.0}, {8.0, 4.0});
  EXPECT_DOUBLE_EQ(inst.cost(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(inst.cost(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(inst.cost(2, 0), 2.0);
  EXPECT_DOUBLE_EQ(inst.cost(2, 1), 1.0);
  EXPECT_FALSE(inst.unit_scales());
}

TEST(Instance, ClusteredMachinesUseGroupRows) {
  const Instance inst =
      Instance::clustered({2, 3}, {{1.0, 10.0}, {5.0, 2.0}});
  EXPECT_EQ(inst.num_machines(), 5u);
  EXPECT_EQ(inst.num_groups(), 2u);
  EXPECT_EQ(inst.group_of(0), 0u);
  EXPECT_EQ(inst.group_of(1), 0u);
  EXPECT_EQ(inst.group_of(2), 1u);
  EXPECT_DOUBLE_EQ(inst.cost(1, 1), 10.0);
  EXPECT_DOUBLE_EQ(inst.cost(4, 1), 2.0);
  EXPECT_EQ(inst.machines_in_group(0).size(), 2u);
  EXPECT_EQ(inst.machines_in_group(1).size(), 3u);
  EXPECT_EQ(inst.machines_in_group(1)[0], 2u);
}

TEST(Instance, UnrelatedHasOneGroupPerMachine) {
  const Instance inst = Instance::unrelated({{1.0, 2.0}, {3.0, 4.0}});
  EXPECT_EQ(inst.num_groups(), 2u);
  EXPECT_DOUBLE_EQ(inst.cost(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(inst.cost(1, 0), 3.0);
}

TEST(Instance, RejectsNonPositiveCosts) {
  EXPECT_THROW(Instance::identical(2, {1.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Instance::identical(2, {1.0, -3.0}), std::invalid_argument);
}

TEST(Instance, RejectsRaggedRows) {
  EXPECT_THROW(Instance::unrelated({{1.0, 2.0}, {3.0}}),
               std::invalid_argument);
}

TEST(Instance, RejectsEmptyShapes) {
  EXPECT_THROW(Instance::identical(0, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance::clustered({2, 0}, {{1.0}, {1.0}}),
               std::invalid_argument);
  EXPECT_THROW(Instance::related({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(Instance::related({0.0}, {1.0}), std::invalid_argument);
}

TEST(Instance, MaxCostAccountsForScales) {
  const Instance inst = Instance::related({0.5, 2.0}, {3.0, 7.0});
  // Slowest machine has scale 2; max base cost 7 -> 14.
  EXPECT_DOUBLE_EQ(inst.max_cost(), 14.0);
}

TEST(Instance, MinCostOfJobAndTotalMinWork) {
  const Instance inst = Instance::unrelated({{4.0, 1.0}, {2.0, 9.0}});
  EXPECT_DOUBLE_EQ(inst.min_cost_of_job(0), 2.0);
  EXPECT_DOUBLE_EQ(inst.min_cost_of_job(1), 1.0);
  EXPECT_DOUBLE_EQ(inst.total_min_work(), 3.0);
}

TEST(Instance, SetJobTypesValidatesEquality) {
  Instance inst = Instance::unrelated({{1.0, 1.0, 5.0}, {2.0, 2.0, 3.0}});
  inst.set_job_types({0, 0, 1});
  EXPECT_TRUE(inst.has_job_types());
  EXPECT_EQ(inst.num_job_types(), 2u);
  EXPECT_EQ(inst.job_type(0), 0u);
  EXPECT_EQ(inst.job_type(2), 1u);
}

TEST(Instance, SetJobTypesRejectsMismatchedRows) {
  Instance inst = Instance::unrelated({{1.0, 1.0}, {2.0, 3.0}});
  // Jobs 0 and 1 differ on machine 1, so they cannot share a type.
  EXPECT_THROW(inst.set_job_types({0, 0}), std::invalid_argument);
}

TEST(Instance, SetJobTypesRejectsSparseIds) {
  Instance inst = Instance::unrelated({{1.0, 1.0}});
  EXPECT_THROW(inst.set_job_types({0, 2}), std::invalid_argument);
  EXPECT_THROW(inst.set_job_types({0}), std::invalid_argument);
}

TEST(Instance, InferJobTypesGroupsEqualColumns) {
  Instance inst =
      Instance::unrelated({{1.0, 5.0, 1.0, 5.0}, {2.0, 6.0, 2.0, 6.0}});
  EXPECT_EQ(inst.infer_job_types(), 2u);
  EXPECT_EQ(inst.job_type(0), inst.job_type(2));
  EXPECT_EQ(inst.job_type(1), inst.job_type(3));
  EXPECT_NE(inst.job_type(0), inst.job_type(1));
}

TEST(Instance, InferJobTypesAllDistinct) {
  Instance inst = Instance::unrelated({{1.0, 2.0, 3.0}});
  EXPECT_EQ(inst.infer_job_types(), 3u);
}

class InstanceShapeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(InstanceShapeSweep, CostLookupConsistentWithGroups) {
  const auto [m, n] = GetParam();
  std::vector<std::vector<Cost>> rows(m, std::vector<Cost>(n));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      rows[i][j] = static_cast<Cost>(1 + i * n + j);
    }
  }
  const Instance inst = Instance::unrelated(std::move(rows));
  for (MachineId i = 0; i < m; ++i) {
    EXPECT_EQ(inst.group_of(i), i);
    for (JobId j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(inst.cost(i, j),
                       static_cast<Cost>(1 + i * n + j));
      EXPECT_DOUBLE_EQ(inst.group_cost(i, j), inst.cost(i, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, InstanceShapeSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 5},
                      std::pair<std::size_t, std::size_t>{5, 2},
                      std::pair<std::size_t, std::size_t>{8, 8}));

}  // namespace
}  // namespace dlb
