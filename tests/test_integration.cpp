// Cross-module integration tests: full pipelines the way the benches and
// examples drive them (generator -> algorithm -> validation -> bounds).

#include <gtest/gtest.h>

#include <sstream>

#include "centralized/clb2c.hpp"
#include "centralized/ect.hpp"
#include "centralized/list_scheduling.hpp"
#include "centralized/lpt.hpp"
#include "centralized/min_min.hpp"
#include "core/generators.hpp"
#include "core/instance_io.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"
#include "dist/dlb2c.hpp"
#include "dist/mjtb.hpp"
#include "dist/ojtb.hpp"
#include "parallel/monte_carlo.hpp"
#include "stats/summary.hpp"
#include "ws/work_stealing_sim.hpp"

namespace dlb {
namespace {

TEST(Integration, EveryCentralizedAlgorithmBeatsNoAlgorithm) {
  const Instance inst = gen::two_cluster_uniform(8, 4, 120, 1.0, 100.0, 1);
  const Cost lb = makespan_lower_bound(inst);
  const Schedule piled(inst, Assignment::all_on(120, 0));

  for (const Schedule& s :
       {centralized::list_schedule(inst), centralized::lpt_schedule(inst),
        centralized::ect_schedule(inst), centralized::min_min_schedule(inst),
        centralized::clb2c_schedule(inst)}) {
    EXPECT_TRUE(is_complete_partition(s));
    EXPECT_GE(s.makespan(), lb - 1e-9);
    EXPECT_LT(s.makespan(), piled.makespan());
  }
}

TEST(Integration, SavedInstanceReproducesAlgorithmOutput) {
  const Instance inst = gen::two_cluster_uniform(4, 4, 40, 1.0, 50.0, 2);
  std::stringstream buffer;
  io::save_instance(inst, buffer);
  const Instance loaded = io::load_instance(buffer);
  EXPECT_EQ(centralized::clb2c_schedule(inst).assignment(),
            centralized::clb2c_schedule(loaded).assignment());
}

TEST(Integration, DecentralizedCatchesUpWithCentralized) {
  // The paper's practical claim: DLB2C approaches CLB2C's quality after a
  // modest number of exchanges per machine.
  const Instance inst = gen::two_cluster_uniform(16, 8, 192, 1.0, 1000.0, 3);
  const Cost cent = centralized::clb2c_schedule(inst).makespan();

  Schedule s(inst, gen::random_assignment(inst, 4));
  dist::EngineOptions options;
  options.max_exchanges = 24 * 60;
  stats::Rng rng(5);
  const dist::RunResult result = dist::run_dlb2c(s, options, rng);
  EXPECT_LE(result.best_makespan, 1.5 * cent);
}

TEST(Integration, WorkStealingVersusDlb2cOnTheTrap) {
  // Theorem 1's instance: work stealing pays ~n while a-priori balancing
  // fixes the distribution before execution.
  const auto trap = gen::table1_work_stealing_trap(200.0);
  const ws::WsResult stealing =
      ws::simulate_work_stealing(trap.instance, trap.initial);
  EXPECT_GE(stealing.final_makespan, 200.0);

  // A single full sweep of pairwise-optimal exchanges fixes the instance
  // (it is not a two-cluster instance, so use OJTB's greedy kernel).
  Schedule s(trap.instance, trap.initial);
  dist::EngineOptions options;
  options.max_exchanges = 200;
  stats::Rng rng(6);
  dist::run_ojtb(s, options, rng);
  EXPECT_LE(s.makespan(), 10.0);  // greedy pairs reach a near-optimal split
}

TEST(Integration, MjtbPipelineOnTypedWorkload) {
  Instance inst = gen::typed_uniform(6, 60, 3, 1.0, 50.0, 7);
  Schedule s(inst, gen::random_assignment(inst, 8));
  dist::EngineOptions options;
  options.max_exchanges = 20'000;
  options.stability_check_interval = 1'000;
  stats::Rng rng(9);
  const dist::RunResult result = dist::run_mjtb(s, options, rng);
  EXPECT_TRUE(is_complete_partition(s));
  if (result.converged) {
    EXPECT_LE(result.final_makespan, dist::mjtb_convergence_bound(inst) + 1e-6);
  }
}

TEST(Integration, MonteCarloReplicationOfDlb2cIsDeterministic) {
  const std::function<double(std::size_t, stats::Rng&)> body =
      [](std::size_t rep, stats::Rng& rng) {
        const Instance inst =
            gen::two_cluster_uniform(4, 2, 48, 1.0, 100.0, 1000 + rep);
        Schedule s(inst, gen::random_assignment(inst, 2000 + rep));
        dist::EngineOptions options;
        options.max_exchanges = 300;
        return dist::run_dlb2c(s, options, rng).final_makespan;
      };
  const auto a = parallel::run_replications<double>(8, 42, body);
  const auto b = parallel::run_replications<double>(8, 42, body);
  EXPECT_EQ(a, b);

  stats::RunningStats summary;
  for (double x : a) summary.add(x);
  EXPECT_GT(summary.mean(), 0.0);
}

TEST(Integration, HeterogeneousEquilibriumResemblesHomogeneous) {
  // A miniature Figure 3 with a quantitative acceptance criterion: the
  // KS distance between the normalized equilibrium distributions of the
  // two-cluster and one-cluster cases stays small.
  auto sample_equilibrium = [](bool two_clusters, std::uint64_t seed) {
    stats::SampleSet samples;
    for (std::uint64_t rep = 0; rep < 6; ++rep) {
      const Instance inst =
          two_clusters
              ? gen::two_cluster_uniform(16, 8, 192, 1.0, 1000.0, seed + rep)
              : gen::identical_uniform(24, 192, 1.0, 1000.0, seed + rep);
      const Cost lb = makespan_lower_bound(inst);
      Cost p_eff = 0.0;
      for (JobId j = 0; j < inst.num_jobs(); ++j) {
        Cost best = inst.group_cost(0, j);
        for (GroupId g = 1; g < inst.num_groups(); ++g) {
          best = std::min(best, inst.group_cost(g, j));
        }
        p_eff = std::max(p_eff, best);
      }
      Schedule s(inst, gen::random_assignment(inst, seed + 50 + rep));
      dist::EngineOptions warmup;
      warmup.max_exchanges = 20 * 24;
      stats::Rng rng = stats::Rng::stream(seed + 100, rep);
      if (two_clusters) {
        dist::run_dlb2c(s, warmup, rng);
      } else {
        dist::run_ojtb(s, warmup, rng);
      }
      dist::EngineOptions sample;
      sample.max_exchanges = 20 * 24;
      sample.record_trace = true;
      const dist::RunResult run = two_clusters
                                      ? dist::run_dlb2c(s, sample, rng)
                                      : dist::run_ojtb(s, sample, rng);
      for (const Cost cmax : run.makespan_trace) {
        samples.add((cmax - lb) / p_eff);
      }
    }
    return samples;
  };
  stats::SampleSet het = sample_equilibrium(true, 3000);
  stats::SampleSet hom = sample_equilibrium(false, 4000);
  EXPECT_LT(stats::ks_distance(het, hom), 0.35)
      << "two-cluster equilibrium no longer resembles the homogeneous one";
  // Both concentrate well below the 1.5 level of Figure 2's bound.
  EXPECT_LT(het.quantile(0.99), 1.5);
  EXPECT_LT(hom.quantile(0.99), 1.5);
}

TEST(Integration, InferredTypesMatchGeneratorTypes) {
  Instance inst = gen::typed_uniform(4, 40, 6, 1.0, 20.0, 11);
  const std::size_t declared = inst.num_job_types();
  Instance copy = inst;  // re-infer from scratch
  EXPECT_EQ(copy.infer_job_types(), declared);
}

}  // namespace
}  // namespace dlb
