#include "centralized/list_scheduling.hpp"
#include "centralized/lpt.hpp"

#include <gtest/gtest.h>

#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/validation.hpp"

namespace dlb::centralized {
namespace {

TEST(ListScheduling, PlacesOnLeastLoaded) {
  const Instance inst = Instance::identical(2, {3.0, 3.0, 2.0});
  const Schedule s = list_schedule(inst);
  // job0 -> m0 (0), job1 -> m1 (0), job2 -> m0 (3 vs 3, tie to smaller id).
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_TRUE(is_complete_partition(s));
}

TEST(ListScheduling, RespectsExplicitOrder) {
  const Instance inst = Instance::identical(2, {1.0, 10.0});
  const Schedule s = list_schedule(inst, {1, 0});
  // Big job first on m0, small on m1.
  EXPECT_DOUBLE_EQ(s.load(0), 10.0);
  EXPECT_DOUBLE_EQ(s.load(1), 1.0);
}

TEST(ListScheduling, RejectsIncompleteOrder) {
  const Instance inst = Instance::identical(2, {1.0, 2.0});
  EXPECT_THROW(list_schedule(inst, {0}), std::invalid_argument);
}

TEST(ListScheduling, SingleMachineTakesEverything) {
  const Instance inst = Instance::identical(1, {1.0, 2.0, 3.0});
  const Schedule s = list_schedule(inst);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(Lpt, OrdersLargestFirst) {
  // Classic LPT win: jobs {5,6,7,5,6,7} on 3 machines -> LPT reaches the
  // optimum 12, submission order gives 14.
  const Instance inst = Instance::identical(3, {5.0, 6.0, 7.0, 5.0, 6.0, 7.0});
  EXPECT_DOUBLE_EQ(lpt_schedule(inst).makespan(), 12.0);
  EXPECT_DOUBLE_EQ(list_schedule(inst).makespan(), 14.0);
}

class GrahamBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrahamBoundSweep, ListSchedulingWithin2xOptOnIdentical) {
  const Instance inst = gen::identical_uniform(3, 9, 1.0, 20.0, GetParam());
  const auto exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const Schedule s = list_schedule(inst);
  EXPECT_LE(s.makespan(), 2.0 * exact.optimal + 1e-9);
  EXPECT_GE(s.makespan(), exact.optimal - 1e-9);
}

TEST_P(GrahamBoundSweep, LptWithin4Thirds0ptOnIdentical) {
  const Instance inst = gen::identical_uniform(3, 9, 1.0, 20.0, GetParam());
  const auto exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const Schedule s = lpt_schedule(inst);
  EXPECT_LE(s.makespan(), (4.0 / 3.0) * exact.optimal + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrahamBoundSweep,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace dlb::centralized
