#include "core/assignment.hpp"
#include "core/schedule.hpp"
#include "core/validation.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "stats/rng.hpp"

namespace dlb {
namespace {

TEST(Assignment, StartsUnassigned) {
  Assignment a(3);
  EXPECT_EQ(a.num_jobs(), 3u);
  EXPECT_FALSE(a.is_complete());
  for (JobId j = 0; j < 3; ++j) {
    EXPECT_EQ(a.machine_of(j), kUnassigned);
    EXPECT_FALSE(a.is_assigned(j));
  }
}

TEST(Assignment, AssignUnassignRoundTrip) {
  Assignment a(2);
  a.assign(0, 1);
  EXPECT_TRUE(a.is_assigned(0));
  EXPECT_EQ(a.machine_of(0), 1u);
  a.unassign(0);
  EXPECT_FALSE(a.is_assigned(0));
}

TEST(Assignment, RoundRobinCoversAllMachines) {
  const Assignment a = Assignment::round_robin(7, 3);
  EXPECT_TRUE(a.is_complete());
  EXPECT_EQ(a.machine_of(0), 0u);
  EXPECT_EQ(a.machine_of(3), 0u);
  EXPECT_EQ(a.machine_of(5), 2u);
  EXPECT_EQ(a.jobs_of(0).size(), 3u);
  EXPECT_EQ(a.jobs_of(1).size(), 2u);
}

TEST(Assignment, AllOnPilesEverything) {
  const Assignment a = Assignment::all_on(4, 2);
  EXPECT_EQ(a.jobs_of(2).size(), 4u);
  EXPECT_TRUE(a.jobs_of(0).empty());
}

TEST(Assignment, EqualityIsStructural) {
  Assignment a = Assignment::round_robin(4, 2);
  Assignment b = Assignment::round_robin(4, 2);
  EXPECT_EQ(a, b);
  b.assign(0, 1);
  EXPECT_NE(a, b);
}

class ScheduleTest : public ::testing::Test {
 protected:
  // 2 machines, 3 jobs, unrelated.
  Instance inst_ = Instance::unrelated({{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}});
};

TEST_F(ScheduleTest, EmptyScheduleHasZeroLoads) {
  Schedule s(inst_);
  EXPECT_DOUBLE_EQ(s.load(0), 0.0);
  EXPECT_DOUBLE_EQ(s.load(1), 0.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 0.0);
}

TEST_F(ScheduleTest, AssignUpdatesLoadAndMakespan) {
  Schedule s(inst_);
  s.assign(0, 0);
  s.assign(1, 1);
  EXPECT_DOUBLE_EQ(s.load(0), 1.0);
  EXPECT_DOUBLE_EQ(s.load(1), 5.0);
  EXPECT_DOUBLE_EQ(s.makespan(), 5.0);
  EXPECT_EQ(s.argmax_load(), 1u);
}

TEST_F(ScheduleTest, MoveTransfersLoad) {
  Schedule s(inst_, Assignment::all_on(3, 0));
  EXPECT_DOUBLE_EQ(s.load(0), 6.0);
  s.move(2, 1);
  EXPECT_DOUBLE_EQ(s.load(0), 3.0);
  EXPECT_DOUBLE_EQ(s.load(1), 6.0);
  EXPECT_EQ(s.machine_of(2), 1u);
  EXPECT_TRUE(s.check_consistency());
}

TEST_F(ScheduleTest, MoveToSameMachineIsNoop) {
  Schedule s(inst_, Assignment::all_on(3, 0));
  const Cost before = s.load(0);
  s.move(1, 0);
  EXPECT_DOUBLE_EQ(s.load(0), before);
  EXPECT_TRUE(s.check_consistency());
}

TEST_F(ScheduleTest, UnassignRemovesLoad) {
  Schedule s(inst_, Assignment::all_on(3, 1));
  s.unassign(0);
  EXPECT_DOUBLE_EQ(s.load(1), 11.0);
  EXPECT_EQ(s.machine_of(0), kUnassigned);
  EXPECT_TRUE(s.check_consistency());
}

TEST_F(ScheduleTest, DoubleAssignThrows) {
  Schedule s(inst_);
  s.assign(0, 0);
  EXPECT_THROW(s.assign(0, 1), std::logic_error);
}

TEST_F(ScheduleTest, JobsOnTracksMembership) {
  Schedule s(inst_, Assignment::round_robin(3, 2));
  EXPECT_EQ(s.jobs_on(0).size(), 2u);
  EXPECT_EQ(s.jobs_on(1).size(), 1u);
  s.move(0, 1);
  EXPECT_EQ(s.jobs_on(0).size(), 1u);
  EXPECT_EQ(s.jobs_on(1).size(), 2u);
}

TEST_F(ScheduleTest, FingerprintDetectsChanges) {
  Schedule s1(inst_, Assignment::round_robin(3, 2));
  Schedule s2(inst_, Assignment::round_robin(3, 2));
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());
  s2.move(0, 1);
  EXPECT_NE(s1.fingerprint(), s2.fingerprint());
  s2.move(0, 0);  // back to the original assignment
  EXPECT_EQ(s1.fingerprint(), s2.fingerprint());
}

TEST_F(ScheduleTest, MigrationsCountOnlyEffectiveMoves) {
  Schedule s(inst_, Assignment::all_on(3, 0));
  EXPECT_EQ(s.migrations(), 0u);
  s.move(0, 0);  // no-op
  EXPECT_EQ(s.migrations(), 0u);
  s.move(0, 1);
  EXPECT_EQ(s.migrations(), 1u);
  s.move(0, 0);
  EXPECT_EQ(s.migrations(), 2u);
  s.unassign(1);           // not a migration
  s.move(1, 1);            // assignment of an unassigned job: not a migration
  EXPECT_EQ(s.migrations(), 2u);
}

TEST_F(ScheduleTest, TotalLoadSumsMachines) {
  Schedule s(inst_, Assignment::round_robin(3, 2));
  EXPECT_DOUBLE_EQ(s.total_load(), s.load(0) + s.load(1));
}

TEST_F(ScheduleTest, RejectsMismatchedAssignment) {
  EXPECT_THROW(Schedule(inst_, Assignment(5)), std::invalid_argument);
  Assignment bad(3);
  bad.assign(0, 9);  // machine out of range
  EXPECT_THROW(Schedule(inst_, bad), std::invalid_argument);
}

TEST_F(ScheduleTest, ValidationHelpers) {
  Schedule complete(inst_, Assignment::all_on(3, 0));
  EXPECT_NO_THROW(validate_complete(complete));
  EXPECT_TRUE(is_complete_partition(complete));

  Schedule partial(inst_);
  std::string why;
  EXPECT_FALSE(is_complete_partition(partial, &why));
  EXPECT_FALSE(why.empty());
  EXPECT_THROW(validate_complete(partial), std::runtime_error);
}

TEST_F(ScheduleTest, ApproximationFactor) {
  Schedule s(inst_, Assignment::all_on(3, 0));
  EXPECT_DOUBLE_EQ(approximation_factor(s, 3.0), 2.0);
  EXPECT_THROW((void)approximation_factor(s, 0.0), std::invalid_argument);
}

TEST(ScheduleProperty, RandomMoveSequencePreservesConsistency) {
  const Instance inst =
      gen::uniform_unrelated(5, 20, 1.0, 100.0, /*seed=*/77);
  Schedule s(inst, gen::random_assignment(inst, 78));
  stats::Rng rng(79);
  for (int step = 0; step < 500; ++step) {
    const auto j = static_cast<JobId>(rng.below(inst.num_jobs()));
    const auto to = static_cast<MachineId>(rng.below(inst.num_machines()));
    s.move(j, to);
  }
  EXPECT_TRUE(s.check_consistency());
  // Makespan equals the max recomputed load.
  Cost max_load = 0.0;
  for (MachineId i = 0; i < inst.num_machines(); ++i) {
    max_load = std::max(max_load, s.load(i));
  }
  EXPECT_DOUBLE_EQ(s.makespan(), max_load);
}

}  // namespace
}  // namespace dlb
