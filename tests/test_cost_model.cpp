#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "core/risk.hpp"
#include "core/schedule.hpp"
#include "stats/rng.hpp"

namespace dlb::cost {
namespace {

// ---------------------------------------------------------------- parsing

TEST(CostModelParse, RoundTripsEveryKindBitExactly) {
  const std::vector<std::string> specs = {
      "det:1", "det:2.5", "normal:0.25", "lognormal:0.69999999999999996",
      "pareto:1.6609298370937524,0.92514016203069904,12.401811931637829"};
  for (const std::string& spec : specs) {
    const Dist dist = parse_dist(spec);
    const Dist again = parse_dist(dist_spec(dist));
    EXPECT_EQ(dist, again) << spec;
  }
}

TEST(CostModelParse, UnknownKindListsTheValidSet) {
  try {
    static_cast<void>(parse_dist("gamma:2"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown distribution 'gamma'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("det, normal, lognormal, pareto"), std::string::npos)
        << what;
  }
}

TEST(CostModelParse, WrongArityNamesTheParameters) {
  try {
    static_cast<void>(parse_dist("pareto:2,1"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pareto expects 3 parameters alpha,lo,hi"),
              std::string::npos)
        << what;
  }
}

TEST(CostModelParse, MalformedNumberNamesTheToken) {
  EXPECT_THROW(static_cast<void>(parse_dist("normal:abc")),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(parse_dist("det:1.5x")),
               std::invalid_argument);
}

TEST(CostModelParse, ValidatorNamesTheOffendingField) {
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"det:-1", "det.value"},
      {"normal:-0.5", "normal.sigma"},
      {"lognormal:-2", "lognormal.sigma"},
      {"pareto:-1,1,2", "pareto.alpha"},
      {"pareto:2,0,2", "pareto.lo"},
      {"pareto:2,3,2", "pareto.hi"}};
  for (const auto& [spec, field] : bad) {
    try {
      static_cast<void>(parse_dist(spec));
      FAIL() << spec << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << spec << " -> " << e.what();
    }
  }
}

// ------------------------------------------------------ degenerate anchors

TEST(CostModelAnchors, DegenerateShapesYieldFactorExactlyOne) {
  const std::vector<std::string> degenerate = {
      "det:1", "det:2.5", "normal:0", "lognormal:0", "pareto:2,1.75,1.75"};
  for (const std::string& spec : degenerate) {
    const Dist dist = parse_dist(spec);
    EXPECT_TRUE(dist_degenerate(dist)) << spec;
    EXPECT_EQ(risk_factor(dist, 0.95), 1.0) << spec;      // Bitwise.
    EXPECT_EQ(effective_factor(dist), 1.0) << spec;       // Bitwise.
    EXPECT_EQ(dist_variance(dist), 0.0) << spec;          // Bitwise.
  }
  // The degenerate Pareto's normalized quantile is lo/lo, exactly 1.0.
  EXPECT_EQ(dist_quantile(parse_dist("pareto:2,1.75,1.75"), 0.3), 1.0);
}

TEST(CostModelAnchors, MedianRiskFactorIsExactlyOneForNormal) {
  // Acklam's central branch maps p = 0.5 to z = 0.0 exactly, so the
  // normal median factor is 1 + sigma * 0 == 1.0 bitwise.
  EXPECT_EQ(inverse_normal_cdf(0.5), 0.0);
  EXPECT_EQ(risk_factor(parse_dist("normal:0.4"), 0.5), 1.0);
}

// -------------------------------------------------------------- moments

TEST(CostModelMoments, StochasticKindsAreMeanOneNormalized) {
  // E[sample_factor] == 1 for every stochastic kind: the prediction is
  // unbiased and the distribution only carries its noise. Average the
  // inverse CDF over a uniform grid (the exact mean, up to quadrature).
  const std::vector<std::string> stochastic = {
      "normal:0.3", "lognormal:0.5", "pareto:2.5,0.5,8"};
  constexpr int kGrid = 200'000;
  for (const std::string& spec : stochastic) {
    const Dist dist = parse_dist(spec);
    double sum = 0.0;
    for (int k = 0; k < kGrid; ++k) {
      sum += sample_factor(dist, (k + 0.5) / kGrid);
    }
    EXPECT_NEAR(sum / kGrid, 1.0, 5e-3) << spec;
  }
}

TEST(CostModelMoments, VarianceMatchesTheQuadratureOfTheNormalizedFactor) {
  const std::vector<std::string> stochastic = {"lognormal:0.4",
                                               "pareto:2.8,0.6,4"};
  constexpr int kGrid = 400'000;
  for (const std::string& spec : stochastic) {
    const Dist dist = parse_dist(spec);
    double sq = 0.0;
    for (int k = 0; k < kGrid; ++k) {
      const double f = sample_factor(dist, (k + 0.5) / kGrid);
      sq += (f - 1.0) * (f - 1.0);
    }
    EXPECT_NEAR(sq / kGrid, dist_variance(dist), 2e-2) << spec;
  }
}

TEST(CostModelMoments, QuantileFactorIsMonotoneInQ) {
  const Dist dist = parse_dist("pareto:1.8,0.5,10");
  double previous = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double factor = risk_factor(dist, q);
    EXPECT_GE(factor, previous) << "q=" << q;
    previous = factor;
  }
}

TEST(CostModelMoments, EffectiveFactorIsOnePlusNormalizedStddev) {
  const Dist dist = parse_dist("lognormal:0.6");
  EXPECT_DOUBLE_EQ(effective_factor(dist), 1.0 + dist_stddev(dist));
}

// ------------------------------------------------------------- CostModel

TEST(CostModelClass, CountsStochasticJobs) {
  const CostModel model({parse_dist("det:1"), parse_dist("normal:0.2"),
                         parse_dist("normal:0"), parse_dist("pareto:2,1,3")});
  EXPECT_EQ(model.num_jobs(), 4u);
  EXPECT_EQ(model.num_stochastic_jobs(), 2u);
  EXPECT_FALSE(model.all_degenerate());
  const CostModel flat({parse_dist("det:3"), parse_dist("lognormal:0")});
  EXPECT_TRUE(flat.all_degenerate());
  EXPECT_EQ(flat.num_stochastic_jobs(), 0u);
}

TEST(CostModelClass, ConstructorValidatesEveryDistribution) {
  Dist bad;
  bad.kind = DistKind::kPareto;
  bad.alpha = -2.0;
  EXPECT_THROW(CostModel({Dist{}, bad}), std::invalid_argument);
}

// ------------------------------------------------------------- risk views

TEST(RiskViews, AdjustedInstanceScalesCostsByTheRiskFactor) {
  Instance instance = gen::uniform_unrelated(3, 6, 1.0, 10.0, 7);
  std::vector<Dist> dists(instance.num_jobs());
  dists[2] = parse_dist("lognormal:0.5");
  instance.set_cost_model(CostModel(dists));

  const Instance q95 = risk_adjusted_instance(instance, RiskMode::kQuantile,
                                              kRiskQuantile);
  const double factor = risk_factor(dists[2], kRiskQuantile);
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    EXPECT_EQ(q95.cost(i, 0), instance.cost(i, 0));  // det:1 untouched.
    EXPECT_DOUBLE_EQ(q95.cost(i, 2), instance.cost(i, 2) * factor);
  }
}

TEST(RiskViews, EffectiveLoadIsBitwiseLoadWhenDegenerate) {
  Instance instance = gen::uniform_unrelated(3, 8, 1.0, 100.0, 11);
  instance.set_cost_model(
      CostModel(std::vector<Dist>(instance.num_jobs(), parse_dist("det:1"))));
  Schedule schedule(instance,
                    Assignment::round_robin(instance.num_jobs(),
                                            instance.num_machines()));
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    EXPECT_EQ(effective_load(schedule, i), schedule.load(i));    // Bitwise.
    EXPECT_EQ(quantile_load(schedule, i, 0.95), schedule.load(i));
    EXPECT_EQ(load_variance(schedule, i), 0.0);
  }
  EXPECT_EQ(quantile_makespan(schedule, 0.95), schedule.makespan());
}

TEST(RiskViews, RiskAggregatesAreMoveHistoryIndependent) {
  // Two schedules reaching the same assignment by different move orders
  // must report identical risk sums: the aggregates run in job-id order,
  // never in jobs_on() (arrival) order. load_variance is a from-scratch
  // sum, so it is bitwise history-independent; effective_load adds the
  // margin onto load(i), whose incremental accumulator legitimately
  // carries move-history ulp drift, so it only matches to rounding.
  Instance instance = gen::uniform_unrelated(3, 10, 1.0, 50.0, 23);
  std::vector<Dist> dists(instance.num_jobs(), parse_dist("lognormal:0.4"));
  instance.set_cost_model(CostModel(dists));

  Schedule direct(instance, Assignment::round_robin(instance.num_jobs(),
                                                    instance.num_machines()));
  Schedule detour(instance, Assignment::round_robin(instance.num_jobs(),
                                                    instance.num_machines()));
  for (JobId j = 0; j < instance.num_jobs(); ++j) {
    detour.move(j, 0);  // Pile everything on machine 0...
  }
  for (JobId j = static_cast<JobId>(instance.num_jobs()); j-- > 0;) {
    detour.move(j, direct.machine_of(j));  // ...then rebuild in reverse.
  }
  for (MachineId i = 0; i < instance.num_machines(); ++i) {
    EXPECT_EQ(load_variance(direct, i), load_variance(detour, i));  // Bitwise.
    EXPECT_DOUBLE_EQ(effective_load(direct, i), effective_load(detour, i));
  }
}

TEST(RiskViews, PairedRealizationsPriceBothSchedulesWithTheSameDraws) {
  Instance instance = gen::identical_uniform(4, 12, 1.0, 20.0, 31);
  std::vector<Dist> dists(instance.num_jobs(), parse_dist("pareto:2,0.5,6"));
  instance.set_cost_model(CostModel(dists));
  stats::Rng sample_rng(99);
  const std::vector<double> factors =
      sample_factors(instance.cost_model(), sample_rng);
  ASSERT_EQ(factors.size(), instance.num_jobs());
  Schedule schedule(instance,
                    Assignment::round_robin(instance.num_jobs(),
                                            instance.num_machines()));
  const double realized = realized_makespan(schedule, factors);
  EXPECT_GT(realized, 0.0);
  // Recomputing with the same factors is exact: sampling happened outside.
  EXPECT_EQ(realized, realized_makespan(schedule, factors));
}

}  // namespace
}  // namespace dlb::cost
