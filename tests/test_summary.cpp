#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/rng.hpp"

namespace dlb::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with Bessel correction: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(SampleSet, QuantilesOfKnownData) {
  SampleSet s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.375), 2.5);  // interpolated
}

TEST(SampleSet, EcdfSteps) {
  SampleSet s;
  for (double x : {1.0, 2.0, 2.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.ecdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.ecdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(s.ecdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(s.ecdf(3.0), 0.75);
  EXPECT_DOUBLE_EQ(s.ecdf(4.0), 1.0);
  EXPECT_DOUBLE_EQ(s.ecdf(100.0), 1.0);
}

TEST(SampleSet, QueriesAfterMoreAdds) {
  SampleSet s;
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  s.add(20.0);  // invalidates cached sort
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
}

TEST(SampleSet, EmptyThrowsOnQuantile) {
  SampleSet s;
  EXPECT_THROW((void)s.quantile(0.5), std::logic_error);
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
  EXPECT_DOUBLE_EQ(s.ecdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(KsDistance, IdenticalSamplesHaveZeroDistance) {
  SampleSet a;
  SampleSet b;
  for (double x : {1.0, 2.0, 3.0}) {
    a.add(x);
    b.add(x);
  }
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.0);
}

TEST(KsDistance, DisjointSupportsHaveDistanceOne) {
  SampleSet a;
  SampleSet b;
  for (double x : {1.0, 2.0, 3.0}) a.add(x);
  for (double x : {10.0, 11.0}) b.add(x);
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 1.0);
}

TEST(KsDistance, HandChecked) {
  // F_a steps at 0 and 1; F_b steps at 0.5. At x = 0: |0.5 - 0| = 0.5;
  // at 0.5: |0.5 - 1| = 0.5. Distance 0.5.
  SampleSet a;
  a.add(0.0);
  a.add(1.0);
  SampleSet b;
  b.add(0.5);
  EXPECT_DOUBLE_EQ(ks_distance(a, b), 0.5);
}

TEST(KsDistance, SameDistributionSamplesAreClose) {
  Rng rng(21);
  SampleSet a;
  SampleSet b;
  for (int i = 0; i < 20'000; ++i) {
    a.add(rng.uniform());
    b.add(rng.uniform());
  }
  EXPECT_LT(ks_distance(a, b), 0.03);
}

TEST(KsDistance, EmptyThrows) {
  SampleSet a;
  SampleSet b;
  b.add(1.0);
  EXPECT_THROW((void)ks_distance(a, b), std::logic_error);
}

TEST(SampleSet, MeanMatchesRunningStats) {
  Rng rng(12);
  SampleSet set;
  RunningStats running;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(0.0, 100.0);
    set.add(x);
    running.add(x);
  }
  EXPECT_NEAR(set.mean(), running.mean(), 1e-9);
}

}  // namespace
}  // namespace dlb::stats
