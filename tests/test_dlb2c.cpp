#include "dist/dlb2c.hpp"

#include <gtest/gtest.h>

#include "centralized/clb2c.hpp"
#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"
#include "dist/convergence.hpp"

namespace dlb::dist {
namespace {

TEST(Dlb2cKernel, RejectsWrongInstanceShape) {
  const Instance identical = Instance::identical(3, {1.0, 2.0});
  Schedule s(identical, Assignment::all_on(2, 0));
  const Dlb2cKernel kernel;
  EXPECT_THROW(kernel.balance(s, 0, 1), std::invalid_argument);
}

TEST(Dlb2cKernel, DispatchesOnClusterMembership) {
  // 2+2 machines: same-cluster pair balances evenly; cross-cluster pair
  // sends jobs to their better cluster.
  const Instance inst = Instance::clustered(
      {2, 2}, {{1.0, 1.0, 9.0, 9.0}, {9.0, 9.0, 1.0, 1.0}});
  const Dlb2cKernel kernel;

  Schedule same(inst, Assignment::all_on(4, 0));
  kernel.balance(same, 0, 1);
  EXPECT_EQ(same.jobs_on(0).size(), 2u);
  EXPECT_EQ(same.jobs_on(1).size(), 2u);

  Schedule cross(inst, Assignment::all_on(4, 0));
  kernel.balance(cross, 0, 2);
  // Jobs 2 and 3 run 9x faster on cluster 2: they cross over.
  EXPECT_EQ(inst.group_of(cross.machine_of(2)), 1u);
  EXPECT_EQ(inst.group_of(cross.machine_of(3)), 1u);
}

TEST(Dlb2c, ImprovesAPiledDistribution) {
  const Instance inst = gen::two_cluster_uniform(4, 2, 48, 1.0, 100.0, 1);
  Schedule s(inst, Assignment::all_on(48, 0));
  const Cost initial = s.makespan();
  EngineOptions options;
  options.max_exchanges = 2'000;
  stats::Rng rng(2);
  const RunResult result = run_dlb2c(s, options, rng);
  EXPECT_LT(result.final_makespan, initial / 2.0);
  EXPECT_TRUE(is_complete_partition(s));
}

TEST(Dlb2c, DeterministicGivenSeed) {
  const Instance inst = gen::two_cluster_uniform(3, 3, 30, 1.0, 50.0, 3);
  EngineOptions options;
  options.max_exchanges = 500;
  Schedule s1(inst, gen::random_assignment(inst, 4));
  Schedule s2(inst, gen::random_assignment(inst, 4));
  stats::Rng rng1(5);
  stats::Rng rng2(5);
  run_dlb2c(s1, options, rng1);
  run_dlb2c(s2, options, rng2);
  EXPECT_EQ(s1.assignment(), s2.assignment());
}

class Dlb2cTheorem7Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Dlb2cTheorem7Sweep, StableStatesAre2Approximations) {
  // Theorem 7: IF DLB2C reaches a stable schedule, it is a 2-approximation
  // (given max p <= OPT). With several machines per cluster DLB2C rarely
  // reaches a strict fixed point (Proposition 8), so the sweep alternates
  // 1+1 and 2+2 cluster shapes: the former always stabilises, the latter is
  // allowed to skip.
  const Instance inst =
      GetParam() % 2 == 0
          ? gen::two_cluster_uniform(1, 1, 10, 1.0, 6.0, GetParam())
          : gen::two_cluster_uniform(2, 2, 10, 1.0, 6.0, GetParam());
  Schedule s(inst, gen::random_assignment(inst, GetParam() + 50));
  const Dlb2cKernel kernel;
  if (!run_to_stability(s, kernel, 200)) {
    GTEST_SKIP() << "instance did not stabilise (Proposition 8 allows this)";
  }
  const auto exact = centralized::solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const Cost reference = std::max(exact.optimal, inst.max_cost());
  EXPECT_LE(s.makespan(), 2.0 * reference + 1e-9)
      << "stable DLB2C schedule broke the Theorem 7 bound";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dlb2cTheorem7Sweep,
                         ::testing::Range<std::uint64_t>(0, 20));

class Dlb2cEquilibriumSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Dlb2cEquilibriumSweep, DynamicEquilibriumStaysNearCent) {
  // Section VII-B: even without convergence, after a few exchanges per
  // machine the makespan hovers near CLB2C's ("cent"); assert the paper's
  // 1.5 * cent threshold is reached within the simulated horizon.
  const Instance inst =
      gen::two_cluster_uniform(16, 8, 192, 1.0, 1000.0, GetParam());
  const Cost cent = centralized::clb2c_schedule(inst).makespan();
  Schedule s(inst, gen::random_assignment(inst, GetParam() + 11));
  EngineOptions options;
  options.max_exchanges = 24 * 40;  // 40 exchanges per machine
  options.stop_threshold = 1.5 * cent;
  stats::Rng rng(GetParam() + 22);
  const RunResult result = run_dlb2c(s, options, rng);
  EXPECT_TRUE(result.reached_threshold)
      << "did not reach 1.5x cent within 40 exchanges/machine";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Dlb2cEquilibriumSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Dlb2c, FinalMakespanNeverBelowLowerBound) {
  const Instance inst = gen::two_cluster_uniform(8, 4, 96, 1.0, 500.0, 9);
  Schedule s(inst, gen::random_assignment(inst, 10));
  EngineOptions options;
  options.max_exchanges = 5'000;
  stats::Rng rng(11);
  const RunResult result = run_dlb2c(s, options, rng);
  EXPECT_GE(result.final_makespan, two_cluster_fractional_opt(inst) - 1e-9);
  EXPECT_GE(result.best_makespan, two_cluster_fractional_opt(inst) - 1e-9);
}

}  // namespace
}  // namespace dlb::dist
