// Tests for the two-cluster pair kernels: Greedy Load Balancing
// (Algorithm 6) and pair CLB2C (Algorithm 5 on {m}, {i}).

#include "pairwise/greedy_pair_balance.hpp"
#include "pairwise/pair_clb2c.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/generators.hpp"
#include "pairwise/pairwise_optimal.hpp"

namespace dlb::pairwise {
namespace {

Instance small_two_cluster(std::uint64_t seed, std::size_t jobs = 10) {
  return gen::two_cluster_uniform(2, 2, jobs, 1.0, 10.0, seed);
}

TEST(SortByGroupRatio, OrdersByRatio) {
  // Ratios p0/p1: job0 = 0.1, job1 = 10, job2 = 1.
  const Instance inst =
      Instance::clustered({1, 1}, {{1.0, 10.0, 5.0}, {10.0, 1.0, 5.0}});
  std::vector<JobId> pool = {0, 1, 2};
  sort_by_group_ratio(inst, 0, 1, pool);
  EXPECT_EQ(pool, (std::vector<JobId>{0, 2, 1}));
  sort_by_group_ratio(inst, 1, 0, pool);
  EXPECT_EQ(pool, (std::vector<JobId>{1, 2, 0}));
}

TEST(SortByGroupRatio, TieBreaksByJobId) {
  const Instance inst =
      Instance::clustered({1, 1}, {{2.0, 2.0, 2.0}, {3.0, 3.0, 3.0}});
  std::vector<JobId> pool = {2, 0, 1};
  sort_by_group_ratio(inst, 0, 1, pool);
  EXPECT_EQ(pool, (std::vector<JobId>{0, 1, 2}));
}

TEST(GreedyPairBalance, BalancesIdenticalPairEvenly) {
  const Instance inst = Instance::clustered(
      {2, 1}, {{2.0, 2.0, 2.0, 2.0}, {9.0, 9.0, 9.0, 9.0}});
  Schedule s(inst, Assignment::all_on(4, 0));
  const GreedyPairBalanceKernel kernel;
  EXPECT_TRUE(kernel.balance(s, 0, 1));
  EXPECT_DOUBLE_EQ(s.load(0), 4.0);
  EXPECT_DOUBLE_EQ(s.load(1), 4.0);
}

TEST(GreedyPairBalance, LoadsDifferByAtMostOneJob) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance inst = small_two_cluster(seed, 15);
    Schedule s(inst, Assignment::all_on(15, 0));
    const GreedyPairBalanceKernel kernel;
    kernel.balance(s, 0, 1);
    // Greedy dealing keeps |C(a) - C(b)| below the largest pooled job.
    EXPECT_LE(std::abs(s.load(0) - s.load(1)), inst.max_cost() + 1e-9);
  }
}

TEST(GreedyPairBalance, RejectsCrossClusterPair) {
  const Instance inst = small_two_cluster(1);
  Schedule s(inst, gen::random_assignment(inst, 2));
  const GreedyPairBalanceKernel kernel;
  EXPECT_THROW(kernel.balance(s, 0, 2), std::invalid_argument);
}

TEST(GreedyPairBalance, RejectsNonTwoClusterInstance) {
  const Instance inst = Instance::identical(3, {1.0, 2.0});
  Schedule s(inst, Assignment::all_on(2, 0));
  const GreedyPairBalanceKernel kernel;
  EXPECT_THROW(kernel.balance(s, 0, 1), std::invalid_argument);
}

TEST(GreedyPairBalance, IsIdempotentPerPair) {
  const Instance inst = small_two_cluster(3, 12);
  Schedule s(inst, gen::random_assignment(inst, 4));
  const GreedyPairBalanceKernel kernel;
  kernel.balance(s, 2, 3);  // machines 2,3 are cluster 2
  EXPECT_FALSE(kernel.balance(s, 2, 3));
}

TEST(PairClb2c, SpecialisedJobsGoHome) {
  // Job 0 loves cluster 1, job 1 loves cluster 2.
  const Instance inst =
      Instance::clustered({1, 1}, {{1.0, 9.0}, {9.0, 1.0}});
  Schedule s(inst, Assignment::all_on(2, 0));
  const PairClb2cKernel kernel;
  kernel.balance(s, 0, 1);
  EXPECT_EQ(s.machine_of(0), 0u);
  EXPECT_EQ(s.machine_of(1), 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(PairClb2c, RolesFollowClustersNotArgumentOrder) {
  const Instance inst =
      Instance::clustered({1, 1}, {{1.0, 9.0}, {9.0, 1.0}});
  // Initiate from the cluster-2 machine: same final placement.
  Schedule s(inst, Assignment::all_on(2, 1));
  const PairClb2cKernel kernel;
  kernel.balance(s, 1, 0);
  EXPECT_EQ(s.machine_of(0), 0u);
  EXPECT_EQ(s.machine_of(1), 1u);
}

TEST(PairClb2c, RejectsSameClusterPair) {
  const Instance inst = small_two_cluster(5);
  Schedule s(inst, gen::random_assignment(inst, 6));
  const PairClb2cKernel kernel;
  EXPECT_THROW(kernel.balance(s, 0, 1), std::invalid_argument);
}

TEST(PairClb2c, IsIdempotentPerPair) {
  const Instance inst = small_two_cluster(7, 14);
  Schedule s(inst, gen::random_assignment(inst, 8));
  const PairClb2cKernel kernel;
  kernel.balance(s, 1, 2);
  EXPECT_FALSE(kernel.balance(s, 1, 2));
}

TEST(PairClb2c, PairMakespanWithin2xOfPairOptimal) {
  // Theorem 6 restricted to a pair: CLB2C's split is a 2-approximation of
  // the exhaustive pair optimum whenever job costs don't dominate.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Instance inst = gen::two_cluster_uniform(1, 1, 12, 1.0, 5.0, seed);
    Schedule s(inst, Assignment::all_on(12, 0));
    const PairClb2cKernel kernel;
    kernel.balance(s, 0, 1);
    std::vector<JobId> pool(12);
    std::iota(pool.begin(), pool.end(), 0);
    const Cost optimal = optimal_pair_makespan(inst, 0, 1, pool);
    const Cost reference = std::max(optimal, inst.max_cost());
    EXPECT_LE(s.makespan(), 2.0 * reference + 1e-9) << "seed=" << seed;
  }
}

TEST(PairClb2cSplit, SplitsFromEmptyLoads) {
  const Instance inst =
      Instance::clustered({1, 1}, {{3.0, 4.0}, {4.0, 3.0}});
  std::vector<JobId> to_a;
  std::vector<JobId> to_b;
  pair_clb2c_split(inst, 0, 1, {0, 1}, to_a, to_b);
  EXPECT_EQ(to_a, (std::vector<JobId>{0}));
  EXPECT_EQ(to_b, (std::vector<JobId>{1}));
}

}  // namespace
}  // namespace dlb::pairwise
