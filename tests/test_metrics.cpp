#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"

namespace dlb {
namespace {

Schedule even_schedule() {
  static const Instance inst = Instance::identical(4, {2.0, 2.0, 2.0, 2.0});
  Schedule s(inst);
  for (JobId j = 0; j < 4; ++j) s.assign(j, j);
  return s;
}

Schedule piled_schedule() {
  static const Instance inst = Instance::identical(4, {2.0, 2.0, 2.0, 2.0});
  return Schedule(inst, Assignment::all_on(4, 0));
}

TEST(Metrics, PerfectBalanceScoresPerfectly) {
  const Schedule s = even_schedule();
  EXPECT_DOUBLE_EQ(imbalance_ratio(s), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness(s), 1.0);
  EXPECT_DOUBLE_EQ(load_stddev(s), 0.0);
  EXPECT_DOUBLE_EQ(underutilised_fraction(s), 0.0);
}

TEST(Metrics, TotalImbalanceScoresWorstCase) {
  const Schedule s = piled_schedule();
  EXPECT_DOUBLE_EQ(imbalance_ratio(s), 4.0);       // m
  EXPECT_DOUBLE_EQ(jain_fairness(s), 0.25);        // 1/m
  EXPECT_DOUBLE_EQ(underutilised_fraction(s), 0.75);
  EXPECT_GT(load_stddev(s), 0.0);
}

TEST(Metrics, HandCheckedStddev) {
  const Instance inst = Instance::identical(2, {4.0});
  Schedule s(inst, Assignment::all_on(1, 0));
  // Loads (4, 0): mean 2, variance ((2)^2 + (2)^2)/2 = 4.
  EXPECT_DOUBLE_EQ(load_stddev(s), 2.0);
}

TEST(Metrics, EmptyScheduleEdgeCases) {
  const Instance inst = Instance::identical(3, {1.0});
  Schedule s(inst);  // nothing assigned
  EXPECT_THROW((void)imbalance_ratio(s), std::invalid_argument);
  EXPECT_DOUBLE_EQ(jain_fairness(s), 1.0);
}

TEST(Metrics, BalancingImprovesEveryMetric) {
  const Instance inst = gen::two_cluster_uniform(6, 3, 90, 1.0, 100.0, 3);
  Schedule s(inst, Assignment::all_on(90, 0));
  const double ratio_before = imbalance_ratio(s);
  const double fairness_before = jain_fairness(s);
  dist::EngineOptions options;
  options.max_exchanges = 900;
  stats::Rng rng(4);
  dist::run_dlb2c(s, options, rng);
  EXPECT_LT(imbalance_ratio(s), ratio_before);
  EXPECT_GT(jain_fairness(s), fairness_before);
  EXPECT_LT(underutilised_fraction(s), 0.5);
}

TEST(Metrics, JainIndexBoundedByDefinition) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const Instance inst = gen::uniform_unrelated(5, 25, 1.0, 50.0, seed);
    const Schedule s(inst, gen::random_assignment(inst, seed + 1));
    const double jain = jain_fairness(s);
    EXPECT_GE(jain, 1.0 / 5.0 - 1e-12);
    EXPECT_LE(jain, 1.0 + 1e-12);
    EXPECT_GE(imbalance_ratio(s), 1.0 - 1e-12);
  }
}

}  // namespace
}  // namespace dlb
