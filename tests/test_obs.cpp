#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/json.hpp"
#include "stats/rng.hpp"

namespace dlb::obs {
namespace {

// ---- metrics registry ----

TEST(Metrics, CounterGaugeHistogramBasics) {
  Metrics metrics;
  Counter& c = metrics.counter("events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&metrics.counter("events"), &c);  // stable handle

  Gauge& g = metrics.gauge("depth");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);

  Histogram& h = metrics.histogram("latency");
  h.observe(0.5);
  h.observe(1.0);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  // Every recorded sample sits at or below the p99 bucket bound.
  EXPECT_GE(snap.quantile_bound(0.99), 2.0);
  EXPECT_GT(snap.quantile_bound(0.0), 0.0);
}

TEST(Metrics, NamespacesAreIndependentPerKind) {
  Metrics metrics;
  metrics.counter("x").add(7);
  metrics.gauge("x").set(1.25);
  EXPECT_EQ(metrics.counter("x").value(), 7u);
  EXPECT_DOUBLE_EQ(metrics.gauge("x").value(), 1.25);
}

TEST(Metrics, CounterValuesAreSortedByName) {
  Metrics metrics;
  metrics.counter("zebra").add(1);
  metrics.counter("alpha").add(2);
  metrics.counter("mid").add(3);
  const auto values = metrics.counter_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid");
  EXPECT_EQ(values[2].first, "zebra");
}

TEST(Metrics, SnapshotIsByteDeterministicAcrossInsertionOrder) {
  Metrics forward;
  forward.counter("a").add(1);
  forward.counter("b").add(2);
  forward.gauge("g").set(0.5);
  forward.histogram("h").observe(1.0);

  Metrics reversed;
  reversed.histogram("h").observe(1.0);
  reversed.gauge("g").set(0.5);
  reversed.counter("b").add(2);
  reversed.counter("a").add(1);

  EXPECT_EQ(forward.snapshot().dump(2), reversed.snapshot().dump(2));
}

TEST(Metrics, SnapshotParsesAndCarriesAllSections) {
  Metrics metrics;
  metrics.counter("c").add(9);
  metrics.gauge("g").set(-1.5);
  metrics.histogram("h").observe(4.0);
  const stats::Json doc = stats::Json::parse(metrics.snapshot().dump(2));
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("c")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("g")->as_number(), -1.5);
  const stats::Json* h = doc.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h->find("sum")->as_number(), 4.0);
}

// ---- null-safe context helpers ----

TEST(ObsContext, NullContextYieldsNullSinks) {
  EXPECT_EQ(metrics_of(nullptr), nullptr);
  EXPECT_EQ(tracer_of(nullptr), nullptr);
  Context context;
  EXPECT_EQ(metrics_of(&context), nullptr);
  EXPECT_EQ(tracer_of(&context), nullptr);
  Metrics metrics;
  context.metrics = &metrics;
  EXPECT_EQ(metrics_of(&context), &metrics);
}

// ---- tracer ----

TEST(Tracer, RecordsAndSortsEvents) {
  Tracer tracer;
  tracer.begin(2.0, 1, "span", "cat");
  tracer.instant(1.0, 0, "point", "cat", {{"k", std::int64_t{7}}});
  tracer.end(3.0, 1, "span");
  ASSERT_EQ(tracer.size(), 3u);
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].name, "point");  // sorted by timestamp
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[2].phase, Phase::kEnd);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "k");
}

TEST(Tracer, RingBufferDropsNewestAndCounts) {
  Tracer tracer({/*capacity=*/4});
  for (int i = 0; i < 10; ++i) {
    tracer.instant(static_cast<double>(i), 0, "e", "c");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.capacity(), 4u);
  // The retained prefix is the oldest events, so timestamps 0..3 survive.
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_DOUBLE_EQ(events.back().ts_us, 3.0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanEmitsBeginAndEndWithAnnotations) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, 3, "work", "test", {{"in", std::int64_t{1}}});
    span.annotate({"out", true});
  }
  ASSERT_EQ(tracer.size(), 2u);
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].phase, Phase::kEnd);
  EXPECT_EQ(events[1].tid, 3u);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].key, "out");

  // A null tracer makes the span a no-op rather than a crash.
  ScopedSpan noop(nullptr, 0, "x", "y");
  noop.annotate({"k", 1.0});
}

TEST(Tracer, CsvExportHasHeaderAndOneLinePerEvent) {
  Tracer tracer;
  tracer.begin(0.0, 0, "s", "c");
  tracer.end(1.0, 0, "s");
  std::ostringstream out;
  tracer.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "ts_us,phase,tid,name,category,args");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

// ---- Chrome trace round trip through a real engine run ----

TEST(Tracer, ChromeTraceRoundTripsFromExchangeEngine) {
  const Instance inst = gen::two_cluster_uniform(4, 2, 48, 1.0, 100.0, 1);
  Schedule schedule(inst, gen::random_assignment(inst, 2));
  Metrics metrics;
  Tracer tracer;
  Context context{&metrics, &tracer};
  dist::EngineOptions options;
  options.max_exchanges = 30;
  options.obs = &context;
  stats::Rng rng(3);
  const dist::RunResult result = dist::run_dlb2c(schedule, options, rng);
  ASSERT_EQ(result.exchanges, 30u);

  const stats::Json doc = stats::Json::parse(tracer.to_chrome_json().dump(2));
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const stats::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 60u);  // one B + one E per exchange

  // Timestamps are monotone and the B/E events pair up per tid (LIFO
  // nesting per track is what the Chrome viewer requires).
  double previous_ts = 0.0;
  std::map<std::uint32_t, int> open_spans;
  for (const stats::Json& event : events->as_array()) {
    const double ts = event.find("ts")->as_number();
    EXPECT_GE(ts, previous_ts);
    previous_ts = ts;
    const auto tid = static_cast<std::uint32_t>(
        event.find("tid")->as_number());
    const std::string& phase = event.find("ph")->as_string();
    if (phase == "B") ++open_spans[tid];
    if (phase == "E") {
      --open_spans[tid];
      EXPECT_GE(open_spans[tid], 0);
    }
  }
  for (const auto& [tid, open] : open_spans) EXPECT_EQ(open, 0) << tid;

  // Metrics recorded the same run.
  EXPECT_EQ(metrics.counter("exchange.count").value(), 30u);
  EXPECT_EQ(metrics.counter("exchange.migrations").value(),
            result.migrations);
}

// ---- thread safety: hammer one counter from pool workers (TSan tier) ----

TEST(Metrics, ThreadPoolWorkersHammerOneCounter) {
  Metrics metrics;
  Context context{&metrics, nullptr};
  Counter& hits = metrics.counter("hits");
  Gauge& depth = metrics.gauge("depth");
  Histogram& latency = metrics.histogram("latency");
  parallel::ThreadPool pool(4);
  pool.attach_obs(&context);  // exercises pool.* instrumentation too
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&hits, &depth, &latency] {
      for (int i = 0; i < kAddsPerTask; ++i) hits.add();
      depth.set(1.0);
      latency.observe(1e-6);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(latency.count(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(metrics.counter("pool.tasks").value(),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(metrics.histogram("pool.task_seconds").count(),
            static_cast<std::uint64_t>(kTasks));
  // Snapshotting while workers are alive must also be race-free.
  const stats::Json doc = stats::Json::parse(metrics.snapshot().dump());
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("hits")->as_number(), 64000.0);
}

}  // namespace
}  // namespace dlb::obs
