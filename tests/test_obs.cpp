#include "obs/aggregate.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/json.hpp"
#include "stats/rng.hpp"

namespace dlb::obs {
namespace {

// ---- metrics registry ----

TEST(Metrics, CounterGaugeHistogramBasics) {
  Metrics metrics;
  Counter& c = metrics.counter("events");
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&metrics.counter("events"), &c);  // stable handle

  Gauge& g = metrics.gauge("depth");
  g.set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);

  Histogram& h = metrics.histogram("latency");
  h.observe(0.5);
  h.observe(1.0);
  h.observe(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);
  const Histogram::Snapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  // Every recorded sample sits at or below the p99 bucket bound.
  EXPECT_GE(snap.quantile_bound(0.99), 2.0);
  EXPECT_GT(snap.quantile_bound(0.0), 0.0);
}

TEST(Metrics, NamespacesAreIndependentPerKind) {
  Metrics metrics;
  metrics.counter("x").add(7);
  metrics.gauge("x").set(1.25);
  EXPECT_EQ(metrics.counter("x").value(), 7u);
  EXPECT_DOUBLE_EQ(metrics.gauge("x").value(), 1.25);
}

TEST(Metrics, CounterValuesAreSortedByName) {
  Metrics metrics;
  metrics.counter("zebra").add(1);
  metrics.counter("alpha").add(2);
  metrics.counter("mid").add(3);
  const auto values = metrics.counter_values();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_EQ(values[0].first, "alpha");
  EXPECT_EQ(values[1].first, "mid");
  EXPECT_EQ(values[2].first, "zebra");
}

TEST(Metrics, SnapshotIsByteDeterministicAcrossInsertionOrder) {
  Metrics forward;
  forward.counter("a").add(1);
  forward.counter("b").add(2);
  forward.gauge("g").set(0.5);
  forward.histogram("h").observe(1.0);

  Metrics reversed;
  reversed.histogram("h").observe(1.0);
  reversed.gauge("g").set(0.5);
  reversed.counter("b").add(2);
  reversed.counter("a").add(1);

  EXPECT_EQ(forward.snapshot().dump(2), reversed.snapshot().dump(2));
}

TEST(Metrics, SnapshotParsesAndCarriesAllSections) {
  Metrics metrics;
  metrics.counter("c").add(9);
  metrics.gauge("g").set(-1.5);
  metrics.histogram("h").observe(4.0);
  const stats::Json doc = stats::Json::parse(metrics.snapshot().dump(2));
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("c")->as_number(), 9.0);
  EXPECT_DOUBLE_EQ(doc.find("gauges")->find("g")->as_number(), -1.5);
  const stats::Json* h = doc.find("histograms")->find("h");
  ASSERT_NE(h, nullptr);
  EXPECT_DOUBLE_EQ(h->find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h->find("sum")->as_number(), 4.0);
}

// ---- null-safe context helpers ----

TEST(ObsContext, NullContextYieldsNullSinks) {
  EXPECT_EQ(metrics_of(nullptr), nullptr);
  EXPECT_EQ(tracer_of(nullptr), nullptr);
  Context context;
  EXPECT_EQ(metrics_of(&context), nullptr);
  EXPECT_EQ(tracer_of(&context), nullptr);
  Metrics metrics;
  context.metrics = &metrics;
  EXPECT_EQ(metrics_of(&context), &metrics);
}

// ---- tracer ----

TEST(Tracer, RecordsAndSortsEvents) {
  Tracer tracer;
  tracer.begin(2.0, 1, "span", "cat");
  tracer.instant(1.0, 0, "point", "cat", {{"k", std::int64_t{7}}});
  tracer.end(3.0, 1, "span");
  ASSERT_EQ(tracer.size(), 3u);
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].name, "point");  // sorted by timestamp
  EXPECT_EQ(events[1].phase, Phase::kBegin);
  EXPECT_EQ(events[2].phase, Phase::kEnd);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].key, "k");
}

TEST(Tracer, RingBufferDropsNewestAndCounts) {
  Tracer tracer({/*capacity=*/4});
  for (int i = 0; i < 10; ++i) {
    tracer.instant(static_cast<double>(i), 0, "e", "c");
  }
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  EXPECT_EQ(tracer.capacity(), 4u);
  // The retained prefix is the oldest events, so timestamps 0..3 survive.
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_DOUBLE_EQ(events.back().ts_us, 3.0);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Tracer, ScopedSpanEmitsBeginAndEndWithAnnotations) {
  Tracer tracer;
  {
    ScopedSpan span(&tracer, 3, "work", "test", {{"in", std::int64_t{1}}});
    span.annotate({"out", true});
  }
  ASSERT_EQ(tracer.size(), 2u);
  const std::vector<TraceEvent> events = tracer.events();
  EXPECT_EQ(events[0].phase, Phase::kBegin);
  EXPECT_EQ(events[1].phase, Phase::kEnd);
  EXPECT_EQ(events[1].tid, 3u);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].key, "out");

  // A null tracer makes the span a no-op rather than a crash.
  ScopedSpan noop(nullptr, 0, "x", "y");
  noop.annotate({"k", 1.0});
}

TEST(Tracer, CsvExportHasHeaderAndOneLinePerEvent) {
  Tracer tracer;
  tracer.begin(0.0, 0, "s", "c");
  tracer.end(1.0, 0, "s");
  std::ostringstream out;
  tracer.write_csv(out);
  std::istringstream in(out.str());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "ts_us,phase,tid,name,category,args");
  std::size_t rows = 0;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 2u);
}

// ---- Chrome trace round trip through a real engine run ----

TEST(Tracer, ChromeTraceRoundTripsFromExchangeEngine) {
  const Instance inst = gen::two_cluster_uniform(4, 2, 48, 1.0, 100.0, 1);
  Schedule schedule(inst, gen::random_assignment(inst, 2));
  Metrics metrics;
  Tracer tracer;
  Context context{&metrics, &tracer};
  dist::EngineOptions options;
  options.max_exchanges = 30;
  options.obs = &context;
  stats::Rng rng(3);
  const dist::RunResult result = dist::run_dlb2c(schedule, options, rng);
  ASSERT_EQ(result.exchanges, 30u);

  const stats::Json doc = stats::Json::parse(tracer.to_chrome_json().dump(2));
  EXPECT_EQ(doc.find("displayTimeUnit")->as_string(), "ms");
  const stats::Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 60u);  // one B + one E per exchange

  // Timestamps are monotone and the B/E events pair up per tid (LIFO
  // nesting per track is what the Chrome viewer requires).
  double previous_ts = 0.0;
  std::map<std::uint32_t, int> open_spans;
  for (const stats::Json& event : events->as_array()) {
    const double ts = event.find("ts")->as_number();
    EXPECT_GE(ts, previous_ts);
    previous_ts = ts;
    const auto tid = static_cast<std::uint32_t>(
        event.find("tid")->as_number());
    const std::string& phase = event.find("ph")->as_string();
    if (phase == "B") ++open_spans[tid];
    if (phase == "E") {
      --open_spans[tid];
      EXPECT_GE(open_spans[tid], 0);
    }
  }
  for (const auto& [tid, open] : open_spans) EXPECT_EQ(open, 0) << tid;

  // Metrics recorded the same run.
  EXPECT_EQ(metrics.counter("exchange.count").value(), 30u);
  EXPECT_EQ(metrics.counter("exchange.migrations").value(),
            result.migrations);
}

// ---- thread safety: hammer one counter from pool workers (TSan tier) ----

TEST(Metrics, ThreadPoolWorkersHammerOneCounter) {
  Metrics metrics;
  Context context{&metrics, nullptr};
  Counter& hits = metrics.counter("hits");
  Gauge& depth = metrics.gauge("depth");
  Histogram& latency = metrics.histogram("latency");
  parallel::ThreadPool pool(4);
  pool.attach_obs(&context);  // exercises pool.* instrumentation too
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 1000;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&hits, &depth, &latency] {
      for (int i = 0; i < kAddsPerTask; ++i) hits.add();
      depth.set(1.0);
      latency.observe(1e-6);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(hits.value(),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
  EXPECT_EQ(latency.count(), static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(metrics.counter("pool.tasks").value(),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(metrics.histogram("pool.task_seconds").count(),
            static_cast<std::uint64_t>(kTasks));
  // Snapshotting while workers are alive must also be race-free.
  const stats::Json doc = stats::Json::parse(metrics.snapshot().dump());
  EXPECT_DOUBLE_EQ(doc.find("counters")->find("hits")->as_number(), 64000.0);
}

// ---- percentile export ----

TEST(Metrics, HistogramSnapshotExportsP95Bound) {
  Metrics metrics;
  Histogram& h = metrics.histogram("latency");
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const stats::Json doc = stats::Json::parse(metrics.snapshot().dump(2));
  const stats::Json* entry = doc.find("histograms")->find("latency");
  ASSERT_NE(entry, nullptr);
  const stats::Json* p50 = entry->find("p50_bound");
  const stats::Json* p95 = entry->find("p95_bound");
  const stats::Json* p99 = entry->find("p99_bound");
  ASSERT_NE(p50, nullptr);
  ASSERT_NE(p95, nullptr);
  ASSERT_NE(p99, nullptr);
  // Bucket bounds are monotone in the quantile, and the p95 bound must
  // cover at least the 95th sample.
  EXPECT_LE(p50->as_number(), p95->as_number());
  EXPECT_LE(p95->as_number(), p99->as_number());
  EXPECT_GE(p95->as_number(), 95.0);
}

// ---- convergence flight recorder ----

FlightSample sample_at(std::uint64_t round) {
  FlightSample s;
  s.round = round;
  s.cmax = 100.0 - static_cast<double>(round);
  s.imbalance = 10.0 - static_cast<double>(round % 10);
  s.exchanges = round * 2;
  s.migrations = round * 3;
  s.queue_max = 32 - round % 8;
  return s;
}

TEST(FlightRecorder, RecordsInOrderBelowCapacity) {
  FlightRecorder flight;
  for (std::uint64_t r = 0; r < 16; ++r) flight.record(sample_at(r));
  EXPECT_EQ(flight.size(), 16u);
  EXPECT_EQ(flight.dropped(), 0u);
  const std::vector<FlightSample> samples = flight.samples();
  ASSERT_EQ(samples.size(), 16u);
  for (std::uint64_t r = 0; r < 16; ++r) {
    EXPECT_EQ(samples[r], sample_at(r)) << "round " << r;
  }
}

TEST(FlightRecorder, RingKeepsNewestSamplesAndCountsEvictions) {
  FlightRecorderOptions options;
  options.capacity = 8;
  FlightRecorder flight(options);
  for (std::uint64_t r = 0; r < 20; ++r) flight.record(sample_at(r));
  EXPECT_EQ(flight.size(), 8u);
  EXPECT_EQ(flight.dropped(), 12u);
  const std::vector<FlightSample> samples = flight.samples();
  ASSERT_EQ(samples.size(), 8u);
  // Newest win (rounds 12..19), oldest first — the opposite policy of
  // the tracer ring, which keeps the head of the stream.
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].round, 12 + i);
  }
  flight.clear();
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.dropped(), 0u);
}

TEST(FlightRecorder, JsonRoundTripsThroughSamplesFromJson) {
  FlightRecorder flight;
  for (std::uint64_t r = 0; r < 5; ++r) flight.record(sample_at(r));
  const stats::Json doc = stats::Json::parse(flight.to_json().dump(2));
  EXPECT_EQ(doc.find("schema")->as_string(), "dlb-flight-v1");
  const std::vector<FlightSample> parsed =
      FlightRecorder::samples_from_json(doc);
  EXPECT_EQ(parsed, flight.samples());
  EXPECT_THROW(FlightRecorder::samples_from_json(stats::Json::object()),
               std::runtime_error);
}

// ---- cluster metric aggregation ----

stats::Json daemon_snapshot(std::uint64_t sessions, double uptime) {
  Metrics metrics;
  metrics.counter("dist.transport.sessions").add(sessions);
  metrics.counter("dist.transport.retries").add(sessions / 2);
  metrics.counter("net.socket.bytes_sent").add(sessions * 100);
  metrics.gauge("daemon.uptime_seconds").set(uptime);
  Histogram& h = metrics.histogram("session.frames");
  for (std::uint64_t i = 0; i < sessions; ++i) {
    h.observe(static_cast<double>(i % 7 + 1));
  }
  return metrics.snapshot();
}

TEST(Aggregate, MergeSumsCountersMaxesGaugesAndMergesHistograms) {
  const stats::Json merged = merge_metrics_snapshots(
      {daemon_snapshot(10, 1.5), daemon_snapshot(6, 3.25)});
  EXPECT_DOUBLE_EQ(merged.find("daemons")->as_number(), 2.0);
  const stats::Json* counters = merged.find("counters");
  EXPECT_DOUBLE_EQ(
      counters->find("dist.transport.sessions")->as_number(), 16.0);
  EXPECT_DOUBLE_EQ(
      counters->find("net.socket.bytes_sent")->as_number(), 1600.0);
  // Gauges keep the worst (max) reading across the fleet.
  EXPECT_DOUBLE_EQ(
      merged.find("gauges")->find("daemon.uptime_seconds")->as_number(),
      3.25);
  // Histogram buckets sum; the merged count covers both daemons.
  const stats::Json* hist =
      merged.find("histograms")->find("session.frames");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->find("count")->as_number(), 16.0);
  EXPECT_NE(hist->find("p95_bound"), nullptr);
}

TEST(Aggregate, MergeIsByteDeterministicAcrossInputOrder) {
  const stats::Json a = daemon_snapshot(10, 1.5);
  const stats::Json b = daemon_snapshot(6, 3.25);
  EXPECT_EQ(merge_metrics_snapshots({a, b}).dump(2),
            merge_metrics_snapshots({b, a}).dump(2));
}

TEST(Aggregate, VolatileNamesAreClassified) {
  EXPECT_TRUE(metric_is_volatile("net.socket.bytes_sent"));
  EXPECT_TRUE(metric_is_volatile("daemon.uptime_seconds"));
  EXPECT_TRUE(metric_is_volatile("dist.transport.retries"));
  EXPECT_TRUE(metric_is_volatile("dist.transport.duplicates"));
  EXPECT_TRUE(metric_is_volatile("dist.transport.frames_sent"));
  EXPECT_FALSE(metric_is_volatile("dist.transport.sessions"));
  EXPECT_FALSE(metric_is_volatile("dist.transport.migrations"));
  EXPECT_FALSE(metric_is_volatile("dist.transport.exchanges"));
}

TEST(Aggregate, StableViewDropsTimingDependentSeries) {
  const stats::Json merged = merge_metrics_snapshots(
      {daemon_snapshot(10, 1.5), daemon_snapshot(6, 3.25)});
  const stats::Json stable = stable_cluster_view(merged);
  const stats::Json* counters = stable.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("dist.transport.sessions"), nullptr);
  // Wire behaviour and wall-clock readings are projected out...
  EXPECT_EQ(counters->find("dist.transport.retries"), nullptr);
  EXPECT_EQ(counters->find("net.socket.bytes_sent"), nullptr);
  EXPECT_EQ(stable.find("gauges"), nullptr);
  EXPECT_EQ(stable.find("histograms"), nullptr);
  // ...and the projection itself is byte-deterministic.
  EXPECT_EQ(stable.dump(2), stable_cluster_view(merged).dump(2));
}

TEST(Aggregate, PrometheusExpositionRendersAllKinds) {
  const std::string text = prometheus_exposition(daemon_snapshot(10, 1.5));
  EXPECT_NE(text.find("# TYPE dlb_dist_transport_sessions counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dlb_dist_transport_sessions 10"), std::string::npos);
  EXPECT_NE(text.find("# TYPE dlb_daemon_uptime_seconds gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE dlb_session_frames histogram"),
            std::string::npos);
  EXPECT_NE(text.find("dlb_session_frames_bucket{le=\"+Inf\"} 10"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dlb_session_frames_count 10"), std::string::npos);
}

}  // namespace
}  // namespace dlb::obs
