#include "markov/stationary.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>

#include "markov/makespan_pdf.hpp"
#include "markov/scc.hpp"
#include "stats/rng.hpp"

namespace dlb::markov {
namespace {

TEST(Stationary, TwoMachineChainIsUniformOnItsSink) {
  // m=2, total=2, p_max=2: both states talk to each other with prob 1/2
  // each way -> doubly stochastic -> uniform stationary distribution.
  const StateSpace space = StateSpace::enumerate(2, 2);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);
  ASSERT_EQ(sink.size(), 2u);
  const StationaryResult result = stationary_distribution(matrix, sink);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.pi[sink[0]], 0.5, 1e-9);
  EXPECT_NEAR(result.pi[sink[1]], 0.5, 1e-9);
}

TEST(Stationary, MassSumsToOne) {
  const StateSpace space = StateSpace::enumerate(4, 12);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);
  const StationaryResult result = stationary_distribution(matrix, sink);
  ASSERT_TRUE(result.converged);
  const double total =
      std::accumulate(result.pi.begin(), result.pi.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Stationary, IsAFixedPointOfTheChain) {
  const StateSpace space = StateSpace::enumerate(3, 6);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);
  const StationaryResult result = stationary_distribution(matrix, sink);
  ASSERT_TRUE(result.converged);
  // One more application of P changes nothing.
  std::vector<double> next(result.pi.size(), 0.0);
  for (StateIndex v = 0; v < matrix.num_states(); ++v) {
    for (std::size_t e = matrix.row_begin[v]; e < matrix.row_begin[v + 1];
         ++e) {
      next[matrix.col[e]] += result.pi[v] * matrix.prob[e];
    }
  }
  for (std::size_t s = 0; s < next.size(); ++s) {
    EXPECT_NEAR(next[s], result.pi[s], 1e-9);
  }
}

TEST(Stationary, RejectsEmptySupport) {
  const StateSpace space = StateSpace::enumerate(2, 2);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  EXPECT_THROW(stationary_distribution(matrix, {}), std::invalid_argument);
}

TEST(MakespanPdf, ProbabilitiesSumToOneAndAreSorted) {
  const SteadyStateAnalysis analysis = analyze_steady_state(4, 3);
  double total = 0.0;
  Load prev = -1;
  for (const auto& point : analysis.pdf.points) {
    EXPECT_GT(point.makespan, prev);
    prev = point.makespan;
    total += point.probability;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MakespanPdf, NormalizationUsesBalancedFloor) {
  const SteadyStateAnalysis analysis = analyze_steady_state(4, 2);
  // total = 2*4*3/2 = 12, floor = 3, p_max = 2.
  for (const auto& point : analysis.pdf.points) {
    EXPECT_NEAR(point.normalized, (point.makespan - 3) / 2.0, 1e-12);
  }
  // The balanced state has positive stationary mass.
  EXPECT_GT(analysis.pdf.points.front().probability, 0.0);
  EXPECT_EQ(analysis.pdf.points.front().makespan, 3);
}

TEST(MakespanPdf, CdfAndMeanAreConsistent) {
  const SteadyStateAnalysis analysis = analyze_steady_state(5, 2);
  EXPECT_NEAR(analysis.pdf.cdf_normalized(1e9), 1.0, 1e-9);
  EXPECT_GE(analysis.pdf.mean_normalized(), 0.0);
  // Paper's headline: the makespan stays within 1.5 p_max of the floor with
  // very high probability.
  EXPECT_GE(analysis.pdf.cdf_normalized(1.5), 0.99);
}

TEST(SteadyState, Theorem10BoundHoldsInSink) {
  for (int m : {3, 4, 5}) {
    const SteadyStateAnalysis analysis = analyze_steady_state(m, 3);
    EXPECT_LE(static_cast<double>(analysis.sink_max_makespan),
              analysis.theorem10_bound + 1e-9)
        << "m=" << m;
  }
}

TEST(SteadyState, ModeIsNearHalfPmax) {
  // Figure 2's striking observation: the mode of the normalized makespan
  // distribution sits at ~0.5.
  const SteadyStateAnalysis analysis = analyze_steady_state(6, 4);
  double best_prob = 0.0;
  double mode = 0.0;
  for (const auto& point : analysis.pdf.points) {
    if (point.probability > best_prob) {
      best_prob = point.probability;
      mode = point.normalized;
    }
  }
  EXPECT_NEAR(mode, 0.5, 0.3);
}

TEST(Stationary, MonteCarloSimulationOfTheDynamicsAgrees) {
  // Independent validation: simulate the abstract pair-rebalancing process
  // directly (no transition matrix) and compare the long-run makespan
  // frequencies to the computed stationary pdf.
  const int m = 4;
  const Load p_max = 3;
  const Load total = p_max * m * (m - 1) / 2;
  const SteadyStateAnalysis analysis = analyze_steady_state(m, p_max);

  stats::Rng rng(99);
  std::vector<Load> loads(m, 0);
  // Start balanced.
  for (int i = 0; i < m; ++i) loads[i] = total / m;
  loads[0] += total % m;

  std::map<Load, double> frequency;
  constexpr int kBurnIn = 2'000;
  constexpr int kSamples = 400'000;
  for (int step = 0; step < kBurnIn + kSamples; ++step) {
    // One exchange: uniform pair, uniform feasible parity-matched d.
    const auto i = static_cast<std::size_t>(rng.below(m));
    auto j = static_cast<std::size_t>(rng.below(m - 1));
    if (j >= i) ++j;
    const Load pair_total = loads[i] + loads[j];
    const Load parity = pair_total % 2;
    const Load d_hi = std::min<Load>(p_max, pair_total);
    const int choices = (d_hi - parity) / 2 + 1;
    const Load d = parity + 2 * static_cast<Load>(rng.below(choices));
    // Orientation uniform (lumping makes it irrelevant; keep it faithful).
    if (rng.bernoulli(0.5)) {
      loads[i] = (pair_total + d) / 2;
      loads[j] = (pair_total - d) / 2;
    } else {
      loads[i] = (pair_total - d) / 2;
      loads[j] = (pair_total + d) / 2;
    }
    if (step >= kBurnIn) {
      frequency[*std::max_element(loads.begin(), loads.end())] +=
          1.0 / kSamples;
    }
  }

  for (const auto& point : analysis.pdf.points) {
    const auto it = frequency.find(point.makespan);
    const double simulated = it == frequency.end() ? 0.0 : it->second;
    EXPECT_NEAR(simulated, point.probability, 0.01)
        << "makespan " << point.makespan;
  }
}

TEST(MakespanPdf, RejectsSizeMismatch) {
  const StateSpace space = StateSpace::enumerate(2, 2);
  EXPECT_THROW(makespan_pdf(space, std::vector<double>(99, 0.0), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace dlb::markov
