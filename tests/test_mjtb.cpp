#include "dist/mjtb.hpp"

#include <gtest/gtest.h>

#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/validation.hpp"

namespace dlb::dist {
namespace {

TEST(Mjtb, RequiresJobTypes) {
  const Instance untyped = gen::uniform_unrelated(3, 6, 1.0, 9.0, 1);
  Schedule s(untyped, gen::random_assignment(untyped, 2));
  EngineOptions options;
  stats::Rng rng(3);
  EXPECT_THROW(run_mjtb(s, options, rng), std::invalid_argument);
}

TEST(Mjtb, SingleTypeBehavesLikeOjtb) {
  Instance inst = gen::typed_uniform(3, 10, 1, 1.0, 9.0, 4);
  ASSERT_EQ(inst.num_job_types(), 1u);
  Schedule s(inst, Assignment::all_on(10, 0));
  EngineOptions options;
  options.max_exchanges = 50'000;
  options.stability_check_interval = 100;
  stats::Rng rng(5);
  const RunResult result = run_mjtb(s, options, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.final_makespan, mjtb_convergence_bound(inst), 1e-9);
}

TEST(Mjtb, ConvergenceBoundRequiresTypes) {
  const Instance untyped = gen::uniform_unrelated(2, 4, 1.0, 5.0, 6);
  EXPECT_THROW((void)mjtb_convergence_bound(untyped), std::invalid_argument);
}

TEST(Mjtb, ConvergenceBoundHandChecked) {
  // 2 machines; type 0: 4 jobs at cost (1 on m0, 1 on m1) -> optimum 2;
  // type 1: 2 jobs at cost (3, 3) -> optimum 3. Bound = 5.
  Instance inst = Instance::unrelated(
      {{1.0, 1.0, 1.0, 1.0, 3.0, 3.0}, {1.0, 1.0, 1.0, 1.0, 3.0, 3.0}});
  inst.set_job_types({0, 0, 0, 0, 1, 1});
  EXPECT_DOUBLE_EQ(mjtb_convergence_bound(inst), 5.0);
}

struct MjtbParam {
  std::size_t machines, jobs, types;
  std::uint64_t seed;
};

class MjtbTheorem5Sweep : public ::testing::TestWithParam<MjtbParam> {};

TEST_P(MjtbTheorem5Sweep, ConvergedResultIsKApproximation) {
  const auto p = GetParam();
  Instance inst =
      gen::typed_uniform(p.machines, p.jobs, p.types, 1.0, 10.0, p.seed);
  Schedule s(inst, gen::random_assignment(inst, p.seed + 100));

  EngineOptions options;
  options.max_exchanges = 300'000;
  options.stability_check_interval = 500;
  stats::Rng rng(p.seed + 200);
  const RunResult result = run_mjtb(s, options, rng);
  EXPECT_TRUE(is_complete_partition(s));

  // Theorem 5 applies at convergence: Cmax <= sum of per-type optima
  // <= k * OPT.
  ASSERT_TRUE(result.converged) << "MJTB failed to stabilise within budget";
  EXPECT_LE(result.final_makespan, mjtb_convergence_bound(inst) + 1e-6);

  const auto exact = centralized::solve_exact(inst);
  if (exact.proven) {
    EXPECT_LE(result.final_makespan,
              static_cast<double>(p.types) * exact.optimal + 1e-6)
        << "k-approximation violated (k=" << p.types << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MjtbTheorem5Sweep,
    ::testing::Values(MjtbParam{2, 8, 2, 1}, MjtbParam{3, 9, 2, 2},
                      MjtbParam{3, 9, 3, 3}, MjtbParam{2, 10, 4, 4},
                      MjtbParam{4, 8, 2, 5}, MjtbParam{3, 10, 5, 6}));

TEST(Mjtb, PerTypeLoadsStabiliseIndependently) {
  // After convergence, each type in isolation is optimally spread: check
  // that re-running MJTB sweeps changes nothing.
  Instance inst = gen::typed_uniform(3, 12, 3, 1.0, 9.0, 7);
  Schedule s(inst, gen::random_assignment(inst, 8));
  EngineOptions options;
  options.max_exchanges = 300'000;
  options.stability_check_interval = 500;
  stats::Rng rng(9);
  const RunResult result = run_mjtb(s, options, rng);
  ASSERT_TRUE(result.converged);
  const auto before = s.fingerprint();
  stats::Rng rng2(10);
  EngineOptions once;
  once.max_exchanges = 100;
  run_mjtb(s, once, rng2);
  EXPECT_EQ(s.fingerprint(), before);
}

}  // namespace
}  // namespace dlb::dist
