#include "pairwise/pairwise_optimal.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "dist/convergence.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::pairwise {
namespace {

TEST(PairwiseOptimal, FindsTheExactPairOptimum) {
  // Jobs {3, 3, 2, 2, 2} on two identical machines: optimum is 6.
  const Instance inst = Instance::identical(2, {3.0, 3.0, 2.0, 2.0, 2.0});
  Schedule s(inst, Assignment::all_on(5, 0));
  const PairwiseOptimalKernel kernel;
  EXPECT_TRUE(kernel.balance(s, 0, 1));
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(PairwiseOptimal, KeepsCurrentSplitWhenAlreadyOptimal) {
  const Instance inst = Instance::identical(2, {2.0, 2.0});
  Schedule s(inst);
  s.assign(0, 0);
  s.assign(1, 1);
  const PairwiseOptimalKernel kernel;
  EXPECT_FALSE(kernel.balance(s, 0, 1));
  EXPECT_EQ(s.machine_of(0), 0u);
  EXPECT_EQ(s.machine_of(1), 1u);
}

TEST(PairwiseOptimal, NeverWorseThanBasicGreedy) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Instance inst = gen::uniform_unrelated(2, 10, 1.0, 10.0, seed);
    Schedule greedy(inst, Assignment::all_on(10, 0));
    Schedule optimal(inst, Assignment::all_on(10, 0));
    BasicGreedyKernel{}.balance(greedy, 0, 1);
    PairwiseOptimalKernel{}.balance(optimal, 0, 1);
    EXPECT_LE(optimal.makespan(), greedy.makespan() + 1e-9);
  }
}

TEST(PairwiseOptimal, RejectsOversizedPools) {
  const Instance inst = Instance::identical(2, std::vector<Cost>(30, 1.0));
  Schedule s(inst, Assignment::all_on(30, 0));
  const PairwiseOptimalKernel kernel(/*max_pool=*/22);
  EXPECT_THROW(kernel.balance(s, 0, 1), std::invalid_argument);
}

TEST(PairwiseOptimal, OptimalPairMakespanMatchesKernelResult) {
  const Instance inst = gen::uniform_unrelated(2, 8, 1.0, 9.0, 50);
  Schedule s(inst, gen::random_assignment(inst, 51));
  std::vector<JobId> pool = pooled_jobs(s, 0, 1);
  const Cost expected = optimal_pair_makespan(inst, 0, 1, pool);
  PairwiseOptimalKernel{}.balance(s, 0, 1);
  EXPECT_NEAR(std::max(s.load(0), s.load(1)), expected, 1e-9);
}

// ---- Proposition 2: pairwise-optimal balancing is globally unbounded ----

class Table2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Table2Sweep, TrapIsStableYetNTimesWorseThanOpt) {
  const double n = GetParam();
  const auto trap = gen::table2_pairwise_trap(n);
  Schedule s(trap.instance, trap.initial);
  ASSERT_DOUBLE_EQ(s.makespan(), n);

  // The circled distribution is pairwise-optimal: the exhaustive kernel
  // refuses to change any pair, so the schedule is stable.
  const PairwiseOptimalKernel kernel;
  EXPECT_TRUE(dist::is_stable(s, kernel));
  EXPECT_DOUBLE_EQ(s.makespan(), n);
  // ... while the optimum is 1: the gap n is unbounded in n.
  EXPECT_DOUBLE_EQ(trap.optimal_makespan, 1.0);
}

INSTANTIATE_TEST_SUITE_P(GrowingN, Table2Sweep,
                         ::testing::Values(5.0, 50.0, 500.0, 5000.0));

}  // namespace
}  // namespace dlb::pairwise
