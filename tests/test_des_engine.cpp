#include "des/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dlb::des {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    engine.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Engine, NowAdvancesWithEvents) {
  Engine engine;
  double seen = -1.0;
  engine.schedule_at(5.5, [&] { seen = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(seen, 5.5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.5);
}

TEST(Engine, CallbacksCanScheduleMoreEvents) {
  Engine engine;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) engine.schedule_after(1.0, chain);
  };
  engine.schedule_at(0.0, chain);
  engine.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine engine;
  engine.schedule_at(2.0, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(1.0, [] {}), std::invalid_argument);
}

TEST(Engine, StopHaltsProcessing) {
  Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] {
    ++fired;
    engine.stop();
  });
  engine.schedule_at(2.0, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(engine.empty());
  engine.run();  // resumes
  EXPECT_EQ(fired, 2);
}

TEST(Engine, MaxEventsBoundsARun) {
  Engine engine;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(static_cast<double>(i), [&] { ++fired; });
  }
  EXPECT_EQ(engine.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(engine.run(), 6u);
  EXPECT_EQ(engine.events_processed(), 10u);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine;
  double when = -1.0;
  engine.schedule_at(3.0, [&] {
    engine.schedule_after(2.0, [&] { when = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(when, 5.0);
}

}  // namespace
}  // namespace dlb::des
