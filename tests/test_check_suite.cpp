#include "check/suite.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <stdexcept>

#include "core/instance_io.hpp"

namespace dlb::check {
namespace {

std::string serialized(const Instance& instance) {
  std::stringstream buffer;
  io::save_instance(instance, buffer);
  return buffer.str();
}

TEST(CaseGen, SameSeedAndIndexReproduceTheCaseExactly) {
  for (std::uint64_t index = 0; index < 18; ++index) {
    const GeneratedCase a = make_case(42, index);
    const GeneratedCase b = make_case(42, index);
    EXPECT_EQ(serialized(a.instance), serialized(b.instance));
    EXPECT_EQ(a.initial, b.initial);
    EXPECT_EQ(a.name, b.name);
  }
}

TEST(CaseGen, DifferentSeedsProduceDifferentCases) {
  const GeneratedCase a = make_case(1, 0);
  const GeneratedCase b = make_case(2, 0);
  EXPECT_NE(serialized(a.instance), serialized(b.instance));
}

TEST(CaseGen, CyclesThroughEveryRegime) {
  std::set<Regime> seen;
  for (std::uint64_t index = 0; index < kNumRegimes; ++index) {
    seen.insert(make_case(7, index).regime);
  }
  EXPECT_EQ(seen.size(), kNumRegimes);
}

TEST(CaseGen, PinnedRegimeIsHonoured) {
  for (std::uint64_t index = 0; index < 6; ++index) {
    const GeneratedCase c = make_case(7, index, Regime::kTwoCluster);
    EXPECT_EQ(c.regime, Regime::kTwoCluster);
    EXPECT_EQ(c.instance.num_groups(), 2u);
    EXPECT_TRUE(c.instance.unit_scales());
  }
}

TEST(CaseGen, DegenerateRegimeCoversTheHistoricalCrashShapes) {
  bool saw_zero_jobs = false;
  bool saw_one_machine = false;
  bool saw_empty_group = false;
  for (std::uint64_t index = 0; index < 9; ++index) {
    const GeneratedCase c = make_case(11, index, Regime::kDegenerate);
    saw_zero_jobs |= c.instance.num_jobs() == 0;
    saw_one_machine |= c.instance.num_machines() == 1;
    for (GroupId g = 0; g < c.instance.num_groups(); ++g) {
      saw_empty_group |= c.instance.machines_in_group(g).empty();
    }
  }
  EXPECT_TRUE(saw_zero_jobs);
  EXPECT_TRUE(saw_one_machine);
  EXPECT_TRUE(saw_empty_group);
}

TEST(CaseGen, RegimeNamesRoundTrip) {
  for (std::uint64_t index = 0; index < kNumRegimes; ++index) {
    const Regime regime = make_case(1, index).regime;
    EXPECT_EQ(regime_by_name(regime_name(regime)), regime);
  }
  EXPECT_THROW(regime_by_name("no-such-regime"), std::invalid_argument);
}

TEST(Suite, SmallSweepPassesEveryOracle) {
  SuiteOptions options;
  options.seed = 42;
  options.cases = 60;
  const SuiteSummary summary = run_suite(options);
  EXPECT_TRUE(summary.ok()) << summary.failures.size() << " failures, e.g. "
                            << (summary.failures.empty()
                                    ? ""
                                    : summary.failures.front().report);
  EXPECT_EQ(summary.cases_run, 60u);
  EXPECT_GT(summary.exact_solved, 0u);
  EXPECT_GT(summary.engine_runs, 0u);
  EXPECT_GT(summary.async_runs, 0u);
  // The rotation injected faults and the runners survived them.
  EXPECT_GT(summary.faults.total(), 0u);
}

TEST(Suite, EveryPinnedFaultPlanPasses) {
  for (const char* plan :
       {"none", "drop", "delay", "duplicate", "reorder", "chaos"}) {
    SuiteOptions options;
    options.seed = 42;
    options.cases = 18;
    options.faults = plan;
    const SuiteSummary summary = run_suite(options);
    EXPECT_TRUE(summary.ok())
        << plan << ": "
        << (summary.failures.empty() ? ""
                                     : summary.failures.front().report);
  }
}

TEST(Suite, PinnedRegimeSweepRunsOnlyThatRegime) {
  SuiteOptions options;
  options.seed = 9;
  options.cases = 12;
  options.regime = Regime::kDegenerate;
  const SuiteSummary summary = run_suite(options);
  EXPECT_TRUE(summary.ok());
  EXPECT_EQ(summary.cases_run, 12u);
}

TEST(Suite, UnknownFaultPlanNameThrows) {
  SuiteOptions options;
  options.cases = 1;
  options.faults = "gremlins";
  EXPECT_THROW((void)run_suite(options), std::invalid_argument);
}

}  // namespace
}  // namespace dlb::check
