#include "markov/scc.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dlb::markov {
namespace {

/// Builds a TransitionMatrix from an explicit adjacency list (probabilities
/// uniform per row) for graph-shape tests.
TransitionMatrix from_adjacency(
    const std::vector<std::vector<StateIndex>>& adj) {
  TransitionMatrix m;
  m.row_begin.push_back(0);
  for (const auto& row : adj) {
    for (StateIndex w : row) {
      m.col.push_back(w);
      m.prob.push_back(row.empty()
                           ? 0.0
                           : 1.0 / static_cast<double>(row.size()));
    }
    m.row_begin.push_back(m.col.size());
  }
  return m;
}

TEST(Scc, SingleCycleIsOneComponent) {
  const TransitionMatrix m = from_adjacency({{1}, {2}, {0}});
  const SccResult scc = strongly_connected_components(m);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.sink_components().size(), 1u);
}

TEST(Scc, ChainHasOneComponentPerVertex) {
  const TransitionMatrix m = from_adjacency({{1}, {2}, {}});
  const SccResult scc = strongly_connected_components(m);
  EXPECT_EQ(scc.num_components, 3u);
  const auto sinks = scc.sink_components();
  ASSERT_EQ(sinks.size(), 1u);
  EXPECT_EQ(scc.component_of[2], sinks.front());
}

TEST(Scc, TwoSinksAreDetected) {
  // 0 -> 1, 0 -> 2; 1 and 2 are absorbing.
  const TransitionMatrix m = from_adjacency({{1, 2}, {1}, {2}});
  const SccResult scc = strongly_connected_components(m);
  EXPECT_EQ(scc.sink_components().size(), 2u);
  EXPECT_THROW(sink_states(m, scc), std::logic_error);
}

TEST(Scc, SelfLoopsDoNotMergeComponents) {
  const TransitionMatrix m = from_adjacency({{0, 1}, {1}});
  const SccResult scc = strongly_connected_components(m);
  EXPECT_EQ(scc.num_components, 2u);
}

TEST(Scc, SinkStatesReturnsSortedMembers) {
  const TransitionMatrix m = from_adjacency({{1}, {2, 3}, {3}, {2}});
  const SccResult scc = strongly_connected_components(m);
  const auto sink = sink_states(m, scc);
  EXPECT_EQ(sink, (std::vector<StateIndex>{2, 3}));
}

// ---- Theorem 9 on real chains ----

struct ChainParam {
  int m;
  Load p_max;
};

class Theorem9Sweep : public ::testing::TestWithParam<ChainParam> {};

TEST_P(Theorem9Sweep, UniqueSinkContainsBalancedState) {
  const auto param = GetParam();
  const Load total = param.p_max * param.m * (param.m - 1) / 2;
  const StateSpace space = StateSpace::enumerate(param.m, total);
  const TransitionMatrix matrix = TransitionMatrix::build(space, param.p_max);
  const SccResult scc = strongly_connected_components(matrix);

  const auto sinks = scc.sink_components();
  ASSERT_EQ(sinks.size(), 1u) << "Theorem 9: sink must be unique";
  const auto sink = sink_states(matrix, scc);
  const StateIndex balanced = space.balanced_state();
  EXPECT_TRUE(std::binary_search(sink.begin(), sink.end(), balanced))
      << "Theorem 9: balanced state must lie in the sink component";
}

TEST_P(Theorem9Sweep, SinkMakespanRespectsTheorem10) {
  const auto param = GetParam();
  const Load total = param.p_max * param.m * (param.m - 1) / 2;
  const StateSpace space = StateSpace::enumerate(param.m, total);
  const TransitionMatrix matrix = TransitionMatrix::build(space, param.p_max);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);

  const double bound = static_cast<double>(total) / param.m +
                       0.5 * (param.m - 1) * param.p_max;
  Load max_makespan = 0;
  for (StateIndex s : sink) {
    max_makespan = std::max(max_makespan, space.makespan(s));
  }
  EXPECT_LE(static_cast<double>(max_makespan), bound + 1e-9)
      << "Theorem 10 violated";
  // The bound's witness state (X, X - p, ..., X - (m-1)p) exists as a valid
  // load vector for this choice of total (that is why the paper picks it),
  // even though the dynamics need not actually visit it.
  std::vector<Load> staircase(param.m);
  const Load top = static_cast<Load>(bound);  // integral here
  for (int i = 0; i < param.m; ++i) {
    staircase[i] = top - i * param.p_max;
  }
  EXPECT_NO_THROW((void)space.index_of(staircase));
}

INSTANTIATE_TEST_SUITE_P(Chains, Theorem9Sweep,
                         ::testing::Values(ChainParam{2, 2}, ChainParam{3, 2},
                                           ChainParam{3, 4}, ChainParam{4, 3},
                                           ChainParam{4, 4}, ChainParam{5, 2},
                                           ChainParam{5, 4}, ChainParam{6, 2}));

}  // namespace
}  // namespace dlb::markov
