// Differential determinism across every check regime: the two exchange
// engines must emit byte-identical RunReport JSON when nothing varies but
// the thing that is supposed to be irrelevant — a repeated seed, the
// thread count, or a churn-free ChurnPlan versus no plan at all. The
// property harness fuzzes the same invariants case by case; this test
// pins one deterministic instance per regime so a violation names the
// regime directly, and its name keeps it inside the TSan job's regex.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "check/case_gen.hpp"
#include "core/schedule.hpp"
#include "dist/churn.hpp"
#include "dist/exchange_engine.hpp"
#include "dist/parallel_exchange_engine.hpp"
#include "dist/selector_registry.hpp"
#include "pairwise/kernel_registry.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace dlb {
namespace {

constexpr std::uint64_t kSeed = 2026;

struct Outcome {
  std::string report_json;        ///< RunReport::to_json() bytes.
  std::uint64_t fingerprint = 0;  ///< Final schedule fingerprint.
};

dist::ExchangeEngine seq_engine() {
  return dist::ExchangeEngine(pairwise::kernel_registry().get("basic-greedy"),
                              dist::selector_registry().get("uniform"));
}

dist::ParallelExchangeEngine par_engine() {
  return dist::ParallelExchangeEngine(
      pairwise::kernel_registry().get("basic-greedy"),
      dist::selector_registry().get("uniform"));
}

Outcome run_seq(const check::GeneratedCase& c, const dist::ChurnPlan* plan) {
  Schedule s(c.instance, c.initial);
  dist::EngineOptions options;
  options.max_exchanges = 12 * c.instance.num_machines();
  options.churn = plan;
  stats::Rng rng(kSeed);
  const dist::RunResult result = seq_engine().run(s, options, rng);
  return {static_cast<const dist::RunReport&>(result).to_json().dump(),
          s.fingerprint()};
}

Outcome run_par(const check::GeneratedCase& c, const dist::ChurnPlan* plan,
                parallel::ThreadPool* pool) {
  Schedule s(c.instance, c.initial);
  dist::ParallelEngineOptions options;
  options.max_exchanges = 12 * c.instance.num_machines();
  options.churn = plan;
  options.pool = pool;
  const dist::ParallelRunResult result =
      par_engine().run(s, options, kSeed);
  return {static_cast<const dist::RunReport&>(result).to_json().dump(),
          s.fingerprint()};
}

class DifferentialEngines
    : public ::testing::TestWithParam<check::Regime> {};

// (a) The sequential engine is a pure function of (instance, seed).
TEST_P(DifferentialEngines, SequentialRunsAreReproducible) {
  for (std::uint64_t index = 0; index < 3; ++index) {
    const check::GeneratedCase c = check::make_case(kSeed, index, GetParam());
    if (c.instance.num_machines() < 2) continue;
    const Outcome first = run_seq(c, nullptr);
    const Outcome second = run_seq(c, nullptr);
    EXPECT_EQ(first.report_json, second.report_json) << c.name;
    EXPECT_EQ(first.fingerprint, second.fingerprint) << c.name;
  }
}

// (b) The parallel engine's report is thread-count invariant: the inline
// (null-pool) run and an 8-thread run serialize to the same bytes.
TEST_P(DifferentialEngines, ParallelReportIsThreadCountInvariant) {
  parallel::ThreadPool pool(8);
  for (std::uint64_t index = 0; index < 3; ++index) {
    const check::GeneratedCase c = check::make_case(kSeed, index, GetParam());
    if (c.instance.num_machines() < 2) continue;
    const Outcome inline_run = run_par(c, nullptr, nullptr);
    const Outcome pooled_run = run_par(c, nullptr, &pool);
    EXPECT_EQ(inline_run.report_json, pooled_run.report_json) << c.name;
    EXPECT_EQ(inline_run.fingerprint, pooled_run.fingerprint) << c.name;
  }
}

// (c) A churn-free ChurnPlan is observationally absent: both engines must
// produce the bytes of a plan-less run.
TEST_P(DifferentialEngines, ChurnFreePlanMatchesNoPlan) {
  dist::ChurnPlan empty_plan;
  ASSERT_TRUE(empty_plan.trivial());
  parallel::ThreadPool pool(8);
  for (std::uint64_t index = 0; index < 3; ++index) {
    const check::GeneratedCase c = check::make_case(kSeed, index, GetParam());
    if (c.instance.num_machines() < 2) continue;
    const Outcome seq_none = run_seq(c, nullptr);
    const Outcome seq_plan = run_seq(c, &empty_plan);
    EXPECT_EQ(seq_none.report_json, seq_plan.report_json) << c.name;
    EXPECT_EQ(seq_none.fingerprint, seq_plan.fingerprint) << c.name;

    const Outcome par_none = run_par(c, nullptr, &pool);
    const Outcome par_plan = run_par(c, &empty_plan, &pool);
    EXPECT_EQ(par_none.report_json, par_plan.report_json) << c.name;
    EXPECT_EQ(par_none.fingerprint, par_plan.fingerprint) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, DifferentialEngines,
    ::testing::Values(check::Regime::kIdentical, check::Regime::kRelated,
                      check::Regime::kTwoCluster,
                      check::Regime::kMultiCluster, check::Regime::kUnrelated,
                      check::Regime::kTyped, check::Regime::kSingleType,
                      check::Regime::kExtremeRatio,
                      check::Regime::kDegenerate),
    [](const ::testing::TestParamInfo<check::Regime>& param_info) {
      std::string name = check::regime_name(param_info.param);
      for (char& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dlb
