#include "dist/selector_registry.hpp"
#include "pairwise/kernel_registry.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace dlb {
namespace {

// Canonical names are the implementations' own name() strings, so every
// registered name must round-trip through create().
TEST(KernelRegistry, CanonicalNamesRoundTrip) {
  const pairwise::KernelRegistry& registry = pairwise::kernel_registry();
  const std::vector<std::string> names = registry.names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    EXPECT_TRUE(registry.contains(name));
    const std::unique_ptr<pairwise::PairKernel> fresh = registry.create(name);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->name(), name);
    // The shared instance agrees with a fresh one on identity.
    EXPECT_EQ(registry.get(name).name(), name);
  }
}

TEST(KernelRegistry, ShipsEveryInTreeKernel) {
  const pairwise::KernelRegistry& registry = pairwise::kernel_registry();
  for (const char* name :
       {"basic-greedy", "typed-greedy", "greedy-pair-balance", "pair-clb2c",
        "pairwise-optimal", "dlb2c", "dlbkc"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(KernelRegistry, PaperAliasesResolve) {
  const pairwise::KernelRegistry& registry = pairwise::kernel_registry();
  EXPECT_EQ(registry.get("ojtb").name(), "basic-greedy");
  EXPECT_EQ(registry.get("mjtb").name(), "typed-greedy");
  // Aliases are accepted names but not canonical ones.
  const std::vector<std::string> names = registry.names();
  for (const std::string& name : names) {
    EXPECT_NE(name, "ojtb");
    EXPECT_NE(name, "mjtb");
  }
}

TEST(KernelRegistry, UnknownNameListsTheValidSet) {
  const pairwise::KernelRegistry& registry = pairwise::kernel_registry();
  try {
    (void)registry.get("no-such-kernel");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("no-such-kernel"), std::string::npos);
    EXPECT_NE(what.find("basic-greedy"), std::string::npos);
    EXPECT_NE(what.find("ojtb"), std::string::npos);  // aliases listed too
  }
}

TEST(KernelRegistry, ShipsRiskVariantsForEveryBaseKernel) {
  const pairwise::KernelRegistry& registry = pairwise::kernel_registry();
  for (const char* base :
       {"basic-greedy", "typed-greedy", "greedy-pair-balance", "pair-clb2c",
        "pairwise-optimal", "dlb2c", "dlbkc"}) {
    EXPECT_TRUE(registry.contains(std::string(base) + "_q95")) << base;
    EXPECT_TRUE(registry.contains(std::string(base) + "_effsize")) << base;
  }
}

TEST(KernelRegistry, UnknownStochasticKernelListsTheRiskVariants) {
  // A plausible-but-wrong risk suffix must fail with the full valid set,
  // which includes every *_q95 / *_effsize entry the user could mean.
  const pairwise::KernelRegistry& registry = pairwise::kernel_registry();
  try {
    (void)registry.get("basic-greedy_q99");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("basic-greedy_q99"), std::string::npos);
    EXPECT_NE(what.find("basic-greedy_q95"), std::string::npos);
    EXPECT_NE(what.find("dlb2c_effsize"), std::string::npos);
  }
}

TEST(SelectorRegistry, ShipsRiskAwareMaxLoadVariants) {
  const dist::SelectorRegistry& registry = dist::selector_registry();
  EXPECT_TRUE(registry.contains("max-load_q95"));
  EXPECT_TRUE(registry.contains("max-load_effsize"));
  try {
    (void)registry.get("max-load_q50");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("max-load_q50"), std::string::npos);
    EXPECT_NE(what.find("max-load_q95"), std::string::npos);
    EXPECT_NE(what.find("max-load_effsize"), std::string::npos);
  }
}

TEST(SelectorRegistry, CanonicalNamesRoundTrip) {
  const dist::SelectorRegistry& registry = dist::selector_registry();
  const std::vector<std::string> names = registry.names();
  ASSERT_FALSE(names.empty());
  for (const std::string& name : names) {
    const std::unique_ptr<dist::PeerSelector> fresh = registry.create(name);
    ASSERT_NE(fresh, nullptr);
    EXPECT_EQ(fresh->name(), name);
  }
}

TEST(SelectorRegistry, ShipsUniformAndRing) {
  const dist::SelectorRegistry& registry = dist::selector_registry();
  EXPECT_TRUE(registry.contains("uniform"));
  EXPECT_TRUE(registry.contains("ring"));
}

TEST(SelectorRegistry, UnknownNameListsTheValidSet) {
  const dist::SelectorRegistry& registry = dist::selector_registry();
  try {
    (void)registry.get("torus");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("torus"), std::string::npos);
    EXPECT_NE(what.find("uniform"), std::string::npos);
    EXPECT_NE(what.find("ring"), std::string::npos);
  }
}

TEST(NameRegistry, NamesJoinedIsSortedAndComplete) {
  // names_joined drives CLI usage text; it must include aliases and be
  // deterministically ordered.
  const std::string joined = pairwise::kernel_registry().names_joined();
  EXPECT_NE(joined.find("basic-greedy"), std::string::npos);
  EXPECT_NE(joined.find("ojtb"), std::string::npos);
  std::string previous;
  std::string current;
  for (const char c : joined + "|") {
    if (c == '|') {
      EXPECT_LT(previous, current);
      previous = current;
      current.clear();
    } else {
      current += c;
    }
  }
}

TEST(NameRegistry, DuplicateRegistrationThrows) {
  NameRegistry<pairwise::PairKernel> registry("kernel");
  registry.add("dup", [] {
    return pairwise::kernel_registry().create("basic-greedy");
  });
  EXPECT_THROW(registry.add("dup",
                            [] {
                              return pairwise::kernel_registry().create(
                                  "basic-greedy");
                            }),
               std::logic_error);
  EXPECT_THROW(registry.alias("dup", "dup"), std::logic_error);
  EXPECT_THROW(registry.alias("other", "missing"), std::logic_error);
}

}  // namespace
}  // namespace dlb
