#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/rng.hpp"

namespace dlb::stats {
namespace {

TEST(Histogram, RejectsDegenerateConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BinGeometry) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_width(), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_left(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_center(2), 5.0);
}

TEST(Histogram, CountsLandInCorrectBins) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(3.9);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
  EXPECT_DOUBLE_EQ(h.count(4), 1.0);
  EXPECT_DOUBLE_EQ(h.total_weight(), 3.0);
}

TEST(Histogram, OutOfRangeIsClampedAndCounted) {
  Histogram h(0.0, 1.0, 2);
  h.add(-5.0);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.count(0), 1.0);
  EXPECT_DOUBLE_EQ(h.count(1), 1.0);
}

TEST(Histogram, MassSumsToOne) {
  Histogram h(0.0, 1.0, 10);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double total = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) total += h.mass(b);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, DensityIntegratesToOne) {
  Histogram h(0.0, 4.0, 8);
  Rng rng(6);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform(0.0, 4.0));
  double integral = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    integral += h.density(b) * h.bin_width();
  }
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Histogram, WeightedMean) {
  Histogram h(0.0, 10.0, 10);
  h.add(2.0, 1.0);
  h.add(4.0, 3.0);
  EXPECT_DOUBLE_EQ(h.mean(), (2.0 + 12.0) / 4.0);
}

TEST(Histogram, QuantileOfUniformSamples) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(8);
  for (int i = 0; i < 100'000; ++i) h.add(rng.uniform());
  EXPECT_NEAR(h.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(h.quantile(0.9), 0.9, 0.02);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 4);
  a.add(0.1);
  b.add(0.1);
  b.add(0.9);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.count(0), 2.0);
  EXPECT_DOUBLE_EQ(a.count(3), 1.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 3.0);
}

TEST(Histogram, MergeRejectsMismatchedBinning) {
  Histogram a(0.0, 1.0, 4);
  Histogram b(0.0, 1.0, 8);
  Histogram c(0.0, 2.0, 4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

class HistogramBinSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HistogramBinSweep, EveryValueFallsInItsBin) {
  const std::size_t bins = GetParam();
  Histogram h(-2.0, 3.0, bins);
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-2.0, 3.0);
    h.add(x);
  }
  EXPECT_DOUBLE_EQ(h.underflow(), 0.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 0.0);
  double total = 0.0;
  for (std::size_t b = 0; b < bins; ++b) total += h.count(b);
  EXPECT_DOUBLE_EQ(total, 2000.0);
}

INSTANTIATE_TEST_SUITE_P(Bins, HistogramBinSweep,
                         ::testing::Values(1u, 2u, 7u, 64u, 1000u));

}  // namespace
}  // namespace dlb::stats
