#include "lp/simplex.hpp"

#include <gtest/gtest.h>

namespace dlb::lp {
namespace {

TEST(Simplex, SolvesATextbookMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6  ->  (4, 0), value 12.
  Problem p;
  p.num_vars = 2;
  p.objective = {-3.0, -2.0};  // minimize the negation
  p.constraints.push_back({{1.0, 1.0}, Relation::kLe, 4.0});
  p.constraints.push_back({{1.0, 3.0}, Relation::kLe, 6.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, -12.0, 1e-9);
  EXPECT_NEAR(s.x[0], 4.0, 1e-9);
  EXPECT_NEAR(s.x[1], 0.0, 1e-9);
}

TEST(Simplex, HandlesEqualityConstraints) {
  // min x + 2y s.t. x + y = 3, x <= 2  ->  x=2, y=1, value 4.
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0, 2.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kEq, 3.0});
  p.constraints.push_back({{1.0, 0.0}, Relation::kLe, 2.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 4.0, 1e-9);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
  EXPECT_NEAR(s.x[1], 1.0, 1e-9);
}

TEST(Simplex, HandlesGreaterEqual) {
  // min 2x + y s.t. x + y >= 4, x >= 1  ->  x=1, y=3, value 5.
  Problem p;
  p.num_vars = 2;
  p.objective = {2.0, 1.0};
  p.constraints.push_back({{1.0, 1.0}, Relation::kGe, 4.0});
  p.constraints.push_back({{1.0, 0.0}, Relation::kGe, 1.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.objective, 5.0, 1e-9);
}

TEST(Simplex, DetectsInfeasibility) {
  // x <= 1 and x >= 2.
  Problem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints.push_back({{1.0}, Relation::kLe, 1.0});
  p.constraints.push_back({{1.0}, Relation::kGe, 2.0});
  EXPECT_EQ(solve(p).status, Status::kInfeasible);
}

TEST(Simplex, DetectsUnboundedness) {
  // min -x s.t. x >= 0 (only non-negativity).
  Problem p;
  p.num_vars = 1;
  p.objective = {-1.0};
  p.constraints.push_back({{-1.0}, Relation::kLe, 0.0});  // -x <= 0, vacuous
  EXPECT_EQ(solve(p).status, Status::kUnbounded);
}

TEST(Simplex, NegativeRhsIsNormalized) {
  // -x <= -2  ==  x >= 2; min x -> 2.
  Problem p;
  p.num_vars = 1;
  p.objective = {1.0};
  p.constraints.push_back({{-1.0}, Relation::kLe, -2.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  EXPECT_NEAR(s.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints active at the optimum. Bland's
  // rule must terminate.
  Problem p;
  p.num_vars = 3;
  p.objective = {-0.75, 150.0, -0.02};
  p.constraints.push_back({{0.25, -60.0, -0.04}, Relation::kLe, 0.0});
  p.constraints.push_back({{0.5, -90.0, -0.02}, Relation::kLe, 0.0});
  p.constraints.push_back({{0.0, 0.0, 1.0}, Relation::kLe, 1.0});
  const Solution s = solve(p);
  EXPECT_EQ(s.status, Status::kOptimal);
}

TEST(Simplex, SolutionIsBasic) {
  // Vertex solutions have at most #constraints nonzero structural vars.
  Problem p;
  p.num_vars = 5;
  p.objective = {1.0, 1.0, 1.0, 1.0, 1.0};
  p.constraints.push_back({{1.0, 1.0, 1.0, 1.0, 1.0}, Relation::kEq, 2.0});
  p.constraints.push_back({{1.0, 2.0, 3.0, 4.0, 5.0}, Relation::kGe, 5.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  int nonzero = 0;
  for (double v : s.x) {
    if (v > 1e-9) ++nonzero;
  }
  EXPECT_LE(nonzero, 2);
}

TEST(Simplex, RejectsShapeMismatch) {
  Problem p;
  p.num_vars = 2;
  p.objective = {1.0};  // wrong width
  EXPECT_THROW(solve(p), std::invalid_argument);
  p.objective = {1.0, 1.0};
  p.constraints.push_back({{1.0, 1.0, 1.0}, Relation::kLe, 1.0});
  EXPECT_THROW(solve(p), std::invalid_argument);
}

TEST(Simplex, AssignmentPolytopeVertexIsIntegralForOneMachine) {
  // One "machine" capacity row + assignment rows: the LP should just pick
  // everything (feasible) with all x = 1.
  Problem p;
  p.num_vars = 3;
  p.objective = {0.0, 0.0, 0.0};
  for (std::size_t j = 0; j < 3; ++j) {
    Constraint c;
    c.coeffs.assign(3, 0.0);
    c.coeffs[j] = 1.0;
    c.relation = Relation::kEq;
    c.rhs = 1.0;
    p.constraints.push_back(std::move(c));
  }
  p.constraints.push_back({{1.0, 2.0, 3.0}, Relation::kLe, 6.0});
  const Solution s = solve(p);
  ASSERT_EQ(s.status, Status::kOptimal);
  for (double v : s.x) EXPECT_NEAR(v, 1.0, 1e-9);
}

}  // namespace
}  // namespace dlb::lp
