#include "centralized/ect.hpp"
#include "centralized/min_min.hpp"
#include "centralized/two_choices.hpp"

#include <gtest/gtest.h>

#include "centralized/list_scheduling.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"

namespace dlb::centralized {
namespace {

TEST(Ect, PicksFastestMachineForSingleJob) {
  const Instance inst = Instance::unrelated({{5.0}, {2.0}, {9.0}});
  const Schedule s = ect_schedule(inst);
  EXPECT_EQ(s.machine_of(0), 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(Ect, AccountsForExistingLoad) {
  // Machine 1 is faster for both jobs, but after job 0 lands there, job 1
  // completes earlier on machine 0 (4 vs 2+3=5).
  const Instance inst = Instance::unrelated({{6.0, 4.0}, {2.0, 3.0}});
  const Schedule s = ect_schedule(inst);
  EXPECT_EQ(s.machine_of(0), 1u);
  EXPECT_EQ(s.machine_of(1), 0u);
}

TEST(Ect, EquivalentToListSchedulingOnIdenticalMachines) {
  const Instance inst = gen::identical_uniform(4, 20, 1.0, 10.0, 3);
  EXPECT_DOUBLE_EQ(ect_schedule(inst).makespan(),
                   list_schedule(inst).makespan());
}

TEST(MinMin, CommitsCheapestJobFirst) {
  // Min-Min picks job 1 (cost 1 on m0) before job 0.
  const Instance inst = Instance::unrelated({{5.0, 1.0}, {6.0, 7.0}});
  const Schedule s = min_min_schedule(inst);
  EXPECT_TRUE(is_complete_partition(s));
  EXPECT_EQ(s.machine_of(1), 0u);
}

TEST(MinMin, AllPoliciesProduceCompletePartitions) {
  const Instance inst = gen::uniform_unrelated(5, 25, 1.0, 50.0, 4);
  for (auto policy :
       {BatchPolicy::kMinMin, BatchPolicy::kMaxMin, BatchPolicy::kSufferage}) {
    const Schedule s = batch_schedule(inst, policy);
    EXPECT_TRUE(is_complete_partition(s));
    EXPECT_GE(s.makespan(), makespan_lower_bound(inst) - 1e-9);
  }
}

TEST(MinMin, SufferagePrefersHighRegretJob) {
  // Job 0: best 1 (m0), second 10 -> sufferage 9.
  // Job 1: best 2 (m0), second 3  -> sufferage 1.
  // Sufferage commits job 0 to m0 first; job 1 then completes at 3 either
  // way (1+2 on m0, 3 on m1) and the makespan is 3. Min-Min in contrast
  // would also start with job 0 here; the regret ordering is what we pin.
  const Instance inst = Instance::unrelated({{1.0, 2.0}, {10.0, 3.0}});
  const Schedule s = sufferage_schedule(inst);
  EXPECT_EQ(s.machine_of(0), 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(TwoChoices, CompleteAndDeterministicGivenSeed) {
  const Instance inst = gen::uniform_unrelated(8, 40, 1.0, 10.0, 5);
  stats::Rng rng1(11);
  stats::Rng rng2(11);
  const Schedule a = two_choices_schedule(inst, 2, rng1);
  const Schedule b = two_choices_schedule(inst, 2, rng2);
  EXPECT_TRUE(is_complete_partition(a));
  EXPECT_EQ(a.assignment(), b.assignment());
}

TEST(TwoChoices, MoreChoicesNeverHurtOnAverage) {
  const Instance inst = gen::identical_uniform(16, 200, 1.0, 10.0, 6);
  double total_d1 = 0.0;
  double total_d4 = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng r1 = stats::Rng::stream(77, seed);
    stats::Rng r4 = stats::Rng::stream(78, seed);
    total_d1 += two_choices_schedule(inst, 1, r1).makespan();
    total_d4 += two_choices_schedule(inst, 4, r4).makespan();
  }
  EXPECT_LT(total_d4, total_d1);
}

TEST(TwoChoices, RejectsZeroChoices) {
  const Instance inst = Instance::identical(2, {1.0});
  stats::Rng rng(1);
  EXPECT_THROW(two_choices_schedule(inst, 0, rng), std::invalid_argument);
}

}  // namespace
}  // namespace dlb::centralized
