// Wire-format coverage for net/frame.hpp: every frame type survives an
// encode/decode round trip (whole-buffer and byte-at-a-time through
// FrameReader), and malformed input — truncated, oversized, garbage —
// is rejected with the documented typed FrameError, never read past.

#include "net/frame.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace dlb::net {
namespace {

std::vector<Frame> sample_frames() {
  std::vector<Frame> frames;
  Frame request;
  request.type = FrameType::kRequest;
  request.from = 3;
  request.to = 7;
  request.token = 41;
  // Causal metadata (v2) must survive the wire bit-exactly, including a
  // full-width 48-bit trace id.
  request.trace = (std::uint64_t{1} << 48) - 1;
  request.lclock = 9001;
  frames.push_back(request);

  Frame accept;
  accept.type = FrameType::kAccept;
  accept.from = 7;
  accept.to = 3;
  accept.token = 41;
  accept.trace = 0x1234'5678'9ABCULL;
  accept.lclock = 1;
  accept.payload = encode_jobs({0, 5, 9, 1024, 999999});
  frames.push_back(accept);

  Frame reject;
  reject.type = FrameType::kReject;
  reject.from = 7;
  reject.to = 3;
  reject.token = 42;
  frames.push_back(reject);

  Frame transfer;
  transfer.type = FrameType::kTransfer;
  transfer.from = 3;
  transfer.to = 7;
  transfer.token = 41;
  transfer.payload = encode_moves({{1, 2, 3}, {10, 20}});
  frames.push_back(transfer);

  Frame done;
  done.type = FrameType::kDone;
  done.from = 7;
  done.to = 3;
  done.token = 41;
  frames.push_back(done);

  Frame token;
  token.type = FrameType::kToken;
  token.from = 3;
  token.to = 4;
  token.token = 42;
  frames.push_back(token);

  Frame token_ack;
  token_ack.type = FrameType::kTokenAck;
  token_ack.from = 4;
  token_ack.to = 3;
  token_ack.token = 42;
  frames.push_back(token_ack);

  Frame hello;
  hello.type = FrameType::kHello;
  hello.from = 4;
  hello.to = 0;
  hello.token = 2;
  hello.payload = encode_hello({2, 4, 6});
  frames.push_back(hello);

  return frames;
}

TEST(Frame, EveryTypeRoundTrips) {
  for (const Frame& frame : sample_frames()) {
    const std::vector<std::uint8_t> wire = encode_frame(frame);
    ASSERT_GE(wire.size(), kFrameHeaderSize);
    const Frame back = decode_frame(wire.data(), wire.size());
    EXPECT_EQ(back, frame) << frame_type_name(frame.type);
  }
}

TEST(Frame, V2HeaderLayoutIsStable) {
  // Pin the v2 byte offsets: trace at 24, lclock at 32, payload size at
  // 40. A layout drift here silently desynchronizes mixed builds, so the
  // raw bytes are asserted, not just the round trip.
  Frame frame = sample_frames()[0];
  const std::vector<std::uint8_t> wire = encode_frame(frame);
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  EXPECT_EQ(wire[4], kFrameVersion);
  const auto read_u64 = [&wire](std::size_t at) {
    std::uint64_t value = 0;
    for (int i = 7; i >= 0; --i) {
      value = (value << 8) | wire[at + static_cast<std::size_t>(i)];
    }
    return value;
  };
  EXPECT_EQ(read_u64(16), frame.token);
  EXPECT_EQ(read_u64(24), frame.trace);
  EXPECT_EQ(read_u64(32), frame.lclock);
  EXPECT_EQ(wire[40], 0u);  // empty payload
}

TEST(Frame, ReaderReassemblesOneByteFeeds) {
  // The harshest stream fragmentation a socket can produce: every byte
  // arrives alone. All frames must still come out intact and in order.
  std::vector<std::uint8_t> stream;
  const std::vector<Frame> frames = sample_frames();
  for (const Frame& frame : frames) {
    const std::vector<std::uint8_t> wire = encode_frame(frame);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  FrameReader reader;
  std::vector<Frame> decoded;
  for (const std::uint8_t byte : stream) {
    reader.feed(&byte, 1);
    while (reader.has_frame()) decoded.push_back(reader.pop());
  }
  EXPECT_EQ(decoded, frames);
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(Frame, ReaderHandlesCoalescedFrames) {
  // The opposite extreme: every frame lands in one single feed, the way
  // Nagle-coalesced TCP segments arrive.
  std::vector<std::uint8_t> stream;
  const std::vector<Frame> frames = sample_frames();
  for (const Frame& frame : frames) {
    const std::vector<std::uint8_t> wire = encode_frame(frame);
    stream.insert(stream.end(), wire.begin(), wire.end());
  }
  FrameReader reader;
  reader.feed(stream.data(), stream.size());
  std::vector<Frame> decoded;
  while (reader.has_frame()) decoded.push_back(reader.pop());
  EXPECT_EQ(decoded, frames);
}

TEST(Frame, TruncatedBufferIsTyped) {
  const std::vector<std::uint8_t> wire = encode_frame(sample_frames()[1]);
  for (const std::size_t cut : {std::size_t{0}, std::size_t{5},
                                kFrameHeaderSize - 1, wire.size() - 1}) {
    try {
      (void)decode_frame(wire.data(), cut);
      FAIL() << "decode_frame accepted a " << cut << "-byte prefix";
    } catch (const FrameError& error) {
      EXPECT_EQ(error.kind(), FrameError::Kind::kTruncated);
    }
  }
}

TEST(Frame, TrailingBytesAreTyped) {
  std::vector<std::uint8_t> wire = encode_frame(sample_frames()[0]);
  wire.push_back(0x00);
  try {
    (void)decode_frame(wire.data(), wire.size());
    FAIL() << "decode_frame accepted trailing bytes";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kTruncated);
  }
}

TEST(Frame, OversizedPayloadRejectedOnEncodeAndDecode) {
  Frame frame;
  frame.payload.resize(kMaxFramePayload + 1);
  try {
    (void)encode_frame(frame);
    FAIL() << "encode_frame accepted an oversized payload";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kOversized);
  }

  // A header *declaring* an oversized payload must be rejected before any
  // attempt to buffer it.
  frame.payload.clear();
  std::vector<std::uint8_t> wire = encode_frame(frame);
  const std::uint32_t huge = kMaxFramePayload + 1;
  wire[40] = static_cast<std::uint8_t>(huge);
  wire[41] = static_cast<std::uint8_t>(huge >> 8);
  wire[42] = static_cast<std::uint8_t>(huge >> 16);
  wire[43] = static_cast<std::uint8_t>(huge >> 24);
  FrameReader reader;
  try {
    reader.feed(wire.data(), wire.size());
    FAIL() << "FrameReader buffered an oversized declared payload";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kOversized);
  }
}

TEST(Frame, GarbageIsTyped) {
  const std::vector<std::uint8_t> good = encode_frame(sample_frames()[0]);

  std::vector<std::uint8_t> bad_magic = good;
  bad_magic[0] = 'X';
  try {
    (void)decode_frame(bad_magic.data(), bad_magic.size());
    FAIL() << "decode_frame accepted bad magic";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kBadMagic);
  }

  std::vector<std::uint8_t> bad_version = good;
  bad_version[4] = kFrameVersion + 1;
  try {
    (void)decode_frame(bad_version.data(), bad_version.size());
    FAIL() << "decode_frame accepted a future version";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kBadVersion);
  }

  std::vector<std::uint8_t> bad_type = good;
  bad_type[5] = 0;
  try {
    (void)decode_frame(bad_type.data(), bad_type.size());
    FAIL() << "decode_frame accepted type 0";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kBadType);
  }
  bad_type[5] = 9;
  try {
    (void)decode_frame(bad_type.data(), bad_type.size());
    FAIL() << "decode_frame accepted type 9";
  } catch (const FrameError& error) {
    EXPECT_EQ(error.kind(), FrameError::Kind::kBadType);
  }
}

TEST(Frame, ReaderPoisonedByGarbageMidStream) {
  // A clean frame followed by garbage: the clean frame decodes, the
  // garbage throws from feed(), exactly what makes a transport drop the
  // connection instead of resynchronising on corrupt framing.
  std::vector<std::uint8_t> stream = encode_frame(sample_frames()[0]);
  const std::size_t first_frame = stream.size();
  stream.resize(first_frame + kFrameHeaderSize, 0xAB);
  FrameReader reader;
  EXPECT_THROW(reader.feed(stream.data(), stream.size()), FrameError);
  // The frame that arrived before the corruption is still retrievable.
  ASSERT_TRUE(reader.has_frame());
  EXPECT_EQ(reader.pop(), sample_frames()[0]);
}

TEST(Frame, TypedPayloadsRoundTrip) {
  const std::vector<JobId> jobs{0, 1, 7, 1u << 20};
  EXPECT_EQ(decode_jobs(encode_jobs(jobs)), jobs);
  EXPECT_EQ(decode_jobs(encode_jobs({})), std::vector<JobId>{});

  const TransferMoves moves{{4, 8}, {15, 16, 23}};
  EXPECT_EQ(decode_moves(encode_moves(moves)), moves);

  const HelloPayload hello{3, 12, 16};
  EXPECT_EQ(decode_hello(encode_hello(hello)), hello);
}

}  // namespace
}  // namespace dlb::net
