// The open-system service workload, locked down end to end: ArrivalPlan
// validation and byte-exact persistence, placement-policy parity with the
// centralized baselines, JobPool's shared arrival bookkeeping, closed-mode
// delegation byte-identity (the zero-arrival oracle as a ctest), repair
// thread-invariance at 1/4/8 workers, halt/checkpoint/resume equivalence
// (report JSON + metrics snapshot + trace suffix), and the heap-vs-mapped
// InstanceStore leg. See docs/open-system.md for the determinism contract.

#include "dist/open_system/open_engine.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "centralized/two_choices.hpp"
#include "check/case_gen.hpp"
#include "core/generators.hpp"
#include "core/instance_store.hpp"
#include "dist/dynamic_workload.hpp"
#include "dist/open_system/job_pool.hpp"
#include "obs/obs.hpp"
#include "pairwise/kernel_registry.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace dlb::dist {
namespace {

constexpr std::uint64_t kSeed = 20260808;

// ----- ArrivalPlan -----

TEST(ArrivalPlan, ValidationNamesTheOffendingField) {
  try {
    (void)ArrivalPlan::poisson(0.0, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "ArrivalPlan: invalid rate: must be > 0 and finite, got 0");
  }
  try {
    (void)ArrivalPlan::bursty(1.0, -0.5, 1.0, 1.0, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(
        e.what(),
        "ArrivalPlan: invalid off_rate: must be >= 0 and finite, got -0.5");
  }
  try {
    (void)ArrivalPlan::diurnal({0.0, 0.0}, 1.0, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "ArrivalPlan: invalid trace: every bin has rate 0, so no "
                 "job would ever arrive");
  }
  try {
    (void)ArrivalPlan::diurnal({1.0}, 0.0, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(
        e.what(),
        "ArrivalPlan: invalid bin_duration: must be > 0 and finite, got 0");
  }
}

TEST(ArrivalPlan, UnknownKindNameListsTheOptions) {
  try {
    (void)arrival_kind_by_name("weekly");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown arrival kind: weekly (expected none, poisson, "
                 "bursty, or diurnal)");
  }
}

TEST(ArrivalPlan, PersistenceRoundTripIsByteExact) {
  const ArrivalPlan plan =
      ArrivalPlan::bursty(0.7, 0.01, 33.25, 12.125, 0xFEEDULL);
  std::stringstream first;
  plan.save(first);
  const ArrivalPlan loaded = ArrivalPlan::load(first);
  EXPECT_EQ(plan, loaded);
  std::stringstream second;
  loaded.save(second);
  EXPECT_EQ(first.str(), second.str());

  const ArrivalPlan diurnal =
      ArrivalPlan::diurnal({0.0, 0.3, 1.75, 0.0}, 41.5, 99);
  std::stringstream bytes;
  diurnal.save(bytes);
  EXPECT_EQ(diurnal, ArrivalPlan::load(bytes));
}

TEST(ArrivalPlan, ArrivalTimesArePureAndNonDecreasing) {
  for (const ArrivalPlan& plan :
       {ArrivalPlan::poisson(0.05, 7),
        ArrivalPlan::bursty(0.2, 0.0, 50.0, 25.0, 7),
        ArrivalPlan::diurnal({0.1, 0.0, 0.4}, 30.0, 7)}) {
    const std::vector<double> times = plan.arrival_times(64);
    EXPECT_EQ(times, plan.arrival_times(64));
    // Pure per index: a shorter request is a prefix of a longer one.
    const std::vector<double> prefix = plan.arrival_times(16);
    for (std::size_t k = 0; k < prefix.size(); ++k) {
      EXPECT_EQ(prefix[k], times[k]) << "arrival " << k;
    }
    for (std::size_t k = 1; k < times.size(); ++k) {
      EXPECT_LE(times[k - 1], times[k]) << "arrival " << k;
    }
  }
}

TEST(ArrivalPlan, TrivialPlanRefusesToEmitTimes) {
  EXPECT_THROW((void)ArrivalPlan{}.arrival_times(1), std::invalid_argument);
}

// ----- placement policies -----

/// A minimal view over a schedule under construction: work is the
/// committed load, every machine is a target.
class ScheduleView final : public PlacementView {
 public:
  explicit ScheduleView(const Schedule& schedule) : schedule_(&schedule) {}
  [[nodiscard]] std::size_t num_targets() const override {
    return schedule_->num_machines();
  }
  [[nodiscard]] MachineId target(std::size_t k) const override {
    return static_cast<MachineId>(k);
  }
  [[nodiscard]] Cost work(MachineId i) const override {
    return schedule_->load(i);
  }
  [[nodiscard]] Cost cost(MachineId i, JobId j) const override {
    return schedule_->instance().cost(i, j);
  }

 private:
  const Schedule* schedule_;
};

TEST(Placement, TwoChoicesMatchesTheCentralizedScheduleDrawForDraw) {
  const Instance instance = gen::uniform_unrelated(5, 24, 1.0, 100.0, 3);
  stats::Rng reference_rng(11);
  const Schedule expected =
      centralized::two_choices_schedule(instance, 2, reference_rng);

  const TwoChoicesPlacement policy(2);
  Schedule actual(instance);
  const ScheduleView view(actual);
  stats::Rng rng(11);
  const auto jobs = static_cast<JobId>(instance.num_jobs());
  for (JobId j = 0; j < jobs; ++j) {
    actual.assign(j, policy.place(view, j, rng));
  }
  EXPECT_EQ(expected.fingerprint(), actual.fingerprint());
}

TEST(Placement, MakePlacementParsesSpecsAndRejectsBadOnes) {
  EXPECT_EQ(make_placement("two_choices:3")->name(), "two_choices:3");
  EXPECT_EQ(make_placement("2choices:4")->name(), "two_choices:4");
  EXPECT_EQ(make_placement("random")->name(), "random");
  EXPECT_EQ(make_placement("ect")->name(), "ect");
  EXPECT_EQ(make_placement("2choices")->name(), "two_choices:2");
  try {
    (void)make_placement("two_choices:zero");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "make_placement: invalid probe count 'zero' in "
                 "'two_choices:zero' (want an integer >= 1)");
  }
  EXPECT_THROW((void)make_placement("best_fit"), std::invalid_argument);
  EXPECT_THROW(TwoChoicesPlacement(0), std::invalid_argument);
}

// ----- JobPool (shared with run_dynamic) -----

TEST(JobPool, ShuffleMatchesStatsShuffleByteForByte) {
  stats::Rng pool_rng(5);
  const JobPool pool(12, pool_rng);
  std::vector<JobId> expected(12);
  for (JobId j = 0; j < 12; ++j) expected[j] = j;
  stats::Rng reference(5);
  stats::shuffle(expected.begin(), expected.end(), reference);
  EXPECT_EQ(pool.order(), expected);
  // Both consumed the identical draw sequence.
  EXPECT_EQ(pool_rng(), reference());
}

TEST(JobPool, ExhaustionAndRestoreAreGuarded) {
  stats::Rng rng(1);
  JobPool pool(2, rng);
  (void)pool.take();
  (void)pool.take();
  EXPECT_TRUE(pool.exhausted());
  try {
    (void)pool.take();
    FAIL() << "expected std::logic_error";
  } catch (const std::logic_error& e) {
    EXPECT_STREQ(
        e.what(),
        "JobPool: exhausted after 2 jobs (demand_fits precondition "
        "violated)");
  }
  try {
    pool.restore(3);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "JobPool::restore: cursor 3 exceeds pool size 2");
  }
  pool.restore(1);
  EXPECT_EQ(pool.remaining(), 1u);
}

TEST(JobPool, DemandFitsIsOverflowSafe) {
  EXPECT_TRUE(JobPool::demand_fits(100, 10, 10, 9));
  EXPECT_FALSE(JobPool::demand_fits(100, 10, 10, 10));
  constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
  // epochs * per_epoch wraps; the historical raw product said "fits".
  EXPECT_FALSE(JobPool::demand_fits(100, 1, kMax / 2, 3));
  EXPECT_FALSE(JobPool::demand_fits(100, kMax, 1, 1));
}

TEST(DynamicWorkload, OverflowingDemandIsRejectedNotWrapped) {
  const Instance instance = gen::two_cluster_uniform(2, 2, 64, 1.0, 10.0, 1);
  const pairwise::PairKernel& kernel =
      pairwise::kernel_registry().get("dlb2c");
  DynamicOptions options;
  options.initial_active = 16;
  options.churn_per_epoch = 3;
  options.epochs = std::numeric_limits<std::size_t>::max() / 2;
  try {
    (void)run_dynamic(instance, kernel, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "run_dynamic: invalid DynamicOptions.initial_active: job "
                 "pool too small: initial_active + epochs * churn_per_epoch "
                 "overflows size_t");
  }
}

// ----- run outcomes as comparable bytes -----

struct Outcome {
  std::string report_json;
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  std::vector<obs::TraceEvent> trace;
  std::vector<Cost> makespan_trace;
};

bool same_event(const obs::TraceEvent& a, const obs::TraceEvent& b) {
  return a.ts_us == b.ts_us && a.tid == b.tid && a.phase == b.phase &&
         a.name == b.name && a.category == b.category && a.args == b.args;
}

void expect_identical(const Outcome& a, const Outcome& b) {
  EXPECT_EQ(a.report_json, b.report_json);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.makespan_trace, b.makespan_trace);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t k = 0; k < a.trace.size(); ++k) {
    EXPECT_TRUE(same_event(a.trace[k], b.trace[k]))
        << "trace event " << k << " differs";
  }
}

OpenSystemOptions open_options(const ArrivalPlan& plan) {
  OpenSystemOptions options;
  options.arrivals = &plan;
  options.repair_every = 20.0;
  options.repair_budget = 6;
  options.record_trace = true;
  return options;
}

Outcome run_open(const Instance& instance, OpenSystemOptions options,
                 std::uint64_t seed) {
  obs::Metrics metrics;
  obs::Tracer tracer;
  const obs::Context context{&metrics, &tracer};
  options.obs = &context;
  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);
  Schedule schedule(instance);
  const OpenRunReport report = engine.run(schedule, options, seed);
  return {report.to_json().dump(), schedule.fingerprint(),
          metrics.snapshot().dump(), tracer.events(),
          report.makespan_trace};
}

// ----- closed-mode delegation: the zero-arrival byte-identity gate -----

TEST(OpenSystemEngine, ClosedSequentialDelegationIsByteIdentical) {
  const Instance instance = gen::two_cluster_uniform(4, 3, 40, 1.0, 100.0, 2);
  const Assignment initial = gen::random_assignment(instance, 4);
  const pairwise::PairKernel& kernel =
      pairwise::kernel_registry().get("basic-greedy");
  const UniformPeerSelector selector;

  obs::Metrics inner_metrics;
  obs::Tracer inner_tracer;
  const obs::Context inner_context{&inner_metrics, &inner_tracer};
  EngineOptions classic;
  classic.max_exchanges = 200;
  classic.record_trace = true;
  classic.obs = &inner_context;
  Schedule reference(instance, initial);
  stats::Rng rng(kSeed);
  const RunResult expected =
      ExchangeEngine(kernel, selector).run(reference, classic, rng);

  obs::Metrics open_metrics;
  obs::Tracer open_tracer;
  const obs::Context open_context{&open_metrics, &open_tracer};
  OpenSystemOptions options;  // arrivals == nullptr: closed mode.
  options.closed_max_exchanges = 200;
  options.record_trace = true;
  options.obs = &open_context;
  Schedule delegated(instance, initial);
  const OpenRunReport actual =
      OpenSystemEngine(kernel, selector).run(delegated, options, kSeed);

  EXPECT_EQ(delegated.fingerprint(), reference.fingerprint());
  EXPECT_EQ(static_cast<const RunReport&>(actual).to_json().dump(),
            static_cast<const RunReport&>(expected).to_json().dump());
  EXPECT_EQ(actual.makespan_trace, expected.makespan_trace);
  ASSERT_EQ(actual.exchange_trace.size(), expected.exchange_trace.size());
  EXPECT_EQ(open_metrics.snapshot().dump(), inner_metrics.snapshot().dump());
  ASSERT_EQ(open_tracer.events().size(), inner_tracer.events().size());
  for (std::size_t k = 0; k < open_tracer.events().size(); ++k) {
    EXPECT_TRUE(same_event(open_tracer.events()[k], inner_tracer.events()[k]))
        << "trace event " << k;
  }
  // Closed-mode reports print the classic block only.
  std::ostringstream classic_text;
  expected.print(classic_text);
  std::ostringstream open_text;
  actual.print(open_text);
  EXPECT_EQ(open_text.str(), classic_text.str());
}

TEST(OpenSystemEngine, TrivialPlanDelegatesToTheParallelEngine) {
  const Instance instance = gen::two_cluster_uniform(3, 3, 36, 1.0, 100.0, 6);
  const Assignment initial = gen::random_assignment(instance, 7);
  const pairwise::PairKernel& kernel =
      pairwise::kernel_registry().get("basic-greedy");
  const UniformPeerSelector selector;

  ParallelEngineOptions classic;
  classic.max_exchanges = 120;
  classic.record_trace = true;
  Schedule reference(instance, initial);
  const ParallelRunResult expected =
      ParallelExchangeEngine(kernel, selector).run(reference, classic, kSeed);

  const ArrivalPlan trivial_plan;  // kind == kNone: still closed mode.
  OpenSystemOptions options;
  options.arrivals = &trivial_plan;
  options.parallel_repair = true;
  options.closed_max_exchanges = 120;
  options.record_trace = true;
  Schedule delegated(instance, initial);
  const OpenRunReport actual =
      OpenSystemEngine(kernel, selector).run(delegated, options, kSeed);

  EXPECT_EQ(delegated.fingerprint(), reference.fingerprint());
  EXPECT_EQ(static_cast<const RunReport&>(actual).to_json().dump(),
            static_cast<const RunReport&>(expected).to_json().dump());
  ASSERT_EQ(actual.epoch_trace.size(), expected.epoch_trace.size());
  for (std::size_t k = 0; k < actual.epoch_trace.size(); ++k) {
    EXPECT_EQ(actual.epoch_trace[k].makespan, expected.epoch_trace[k].makespan);
  }
}

TEST(OpenSystemEngine, ClosedModeRejectsOpenCheckpointOptions) {
  const Instance instance = gen::identical_uniform(2, 8, 1.0, 10.0, 1);
  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);
  OpenSystemOptions options;
  options.halt_after_events = 5;
  Schedule schedule(instance, gen::random_assignment(instance, 1));
  EXPECT_THROW(engine.run(schedule, options, kSeed), std::invalid_argument);
}

// ----- open mode: conservation, preconditions, report shape -----

TEST(OpenSystemEngine, DrainsEveryArrivalAndReportsPercentiles) {
  const Instance instance = gen::two_cluster_uniform(3, 2, 30, 1.0, 100.0, 8);
  const ArrivalPlan plan = ArrivalPlan::poisson(0.04, 13);
  const Outcome outcome = run_open(instance, open_options(plan), kSeed);

  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);
  Schedule schedule(instance);
  const OpenRunReport report =
      engine.run(schedule, open_options(plan), kSeed);
  EXPECT_EQ(report.jobs_submitted, 30u);
  EXPECT_EQ(report.jobs_completed, 30u);
  EXPECT_EQ(report.jobs_in_service, 0u);
  EXPECT_EQ(report.jobs_waiting, 0u);
  EXPECT_TRUE(report.converged);
  EXPECT_FALSE(report.halted);
  EXPECT_GT(report.end_time, 0.0);
  EXPECT_GT(report.response_mean, 0.0);
  EXPECT_LE(report.response_p50, report.response_p95);
  EXPECT_LE(report.response_p95, report.response_p99);
  EXPECT_GE(report.events, 60u);  // 30 arrivals + 30 completions.
  // Same seed, same bytes.
  EXPECT_EQ(report.to_json().dump(), outcome.report_json);
  // The open keys ride behind the full base schema.
  EXPECT_NE(outcome.report_json.find("\"open_jobs_submitted\""),
            std::string::npos);
  EXPECT_NE(outcome.report_json.find("\"risk_jobs\""), std::string::npos);
}

TEST(OpenSystemEngine, NumArrivalsCapsTheAdmittedJobs) {
  const Instance instance = gen::identical_uniform(3, 20, 1.0, 50.0, 4);
  const ArrivalPlan plan = ArrivalPlan::poisson(0.1, 5);
  OpenSystemOptions options = open_options(plan);
  options.num_arrivals = 5;
  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);
  Schedule schedule(instance);
  const OpenRunReport report = engine.run(schedule, options, kSeed);
  EXPECT_EQ(report.jobs_submitted, 5u);
  EXPECT_EQ(report.jobs_completed, 5u);

  options.num_arrivals = 21;
  Schedule rejected(instance);
  EXPECT_THROW(engine.run(rejected, options, kSeed), std::invalid_argument);
}

TEST(OpenSystemEngine, OpenModeRequiresAnEmptySchedule) {
  const Instance instance = gen::identical_uniform(2, 6, 1.0, 10.0, 9);
  const ArrivalPlan plan = ArrivalPlan::poisson(0.1, 2);
  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);
  Schedule loaded(instance, gen::random_assignment(instance, 3));
  try {
    engine.run(loaded, open_options(plan), kSeed);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("starts on an empty schedule"),
              std::string::npos);
  }
}

// ----- differential: repair thread invariance at 1/4/8 workers -----

TEST(OpenSystemEngine, ParallelRepairIsThreadCountInvariantAcrossRegimes) {
  for (const check::Regime regime :
       {check::Regime::kOpenPoisson, check::Regime::kOpenBursty}) {
    for (const std::uint64_t index : {0ULL, 1ULL, 2ULL}) {
      const check::GeneratedCase test_case =
          check::make_case(kSeed, index, regime);
      ASSERT_FALSE(test_case.arrivals.trivial());
      OpenSystemOptions options = open_options(test_case.arrivals);
      options.parallel_repair = true;
      options.realize_service = test_case.instance.has_cost_model();

      const Outcome inline_run = run_open(test_case.instance, options, kSeed);
      for (const std::size_t threads :
           {std::size_t{1}, std::size_t{4}, std::size_t{8}}) {
        parallel::ThreadPool pool(threads);
        OpenSystemOptions pooled = options;
        pooled.pool = &pool;
        const Outcome pooled_run =
            run_open(test_case.instance, pooled, kSeed);
        expect_identical(inline_run, pooled_run);
      }
    }
  }
}

// ----- differential: halt / checkpoint / resume -----

TEST(OpenSystemEngine, HaltResumeReproducesTheUninterruptedRunByteForByte) {
  const check::GeneratedCase test_case =
      check::make_case(kSeed, 4, check::Regime::kOpenPoisson);
  const Instance& instance = test_case.instance;
  OpenSystemOptions options = open_options(test_case.arrivals);
  options.placement = nullptr;

  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);
  const Outcome uninterrupted = run_open(instance, options, kSeed);

  Schedule probe(instance);
  const OpenRunReport full = engine.run(probe, options, kSeed);
  ASSERT_GT(full.events, 3u);

  for (const std::uint64_t halt_at :
       {std::uint64_t{1}, full.events / 3, full.events / 2,
        full.events - 1}) {
    OpenCheckpoint checkpoint;
    OpenSystemOptions halt_options = options;
    halt_options.halt_after_events = halt_at;
    halt_options.checkpoint_out = &checkpoint;
    Schedule halted(instance);
    const OpenRunReport partial =
        engine.run(halted, halt_options, kSeed);
    ASSERT_TRUE(partial.halted);
    ASSERT_FALSE(partial.converged);

    // Through the text format: restore must be ulp-exact.
    std::stringstream bytes;
    checkpoint.save(bytes);
    const OpenCheckpoint restored = OpenCheckpoint::load(bytes);
    std::stringstream again;
    restored.save(again);
    EXPECT_EQ(bytes.str(), again.str());

    obs::Metrics metrics;
    obs::Tracer tracer;
    const obs::Context context{&metrics, &tracer};
    OpenSystemOptions resume_options = options;
    resume_options.resume = &restored;
    resume_options.obs = &context;
    Schedule resumed = restored.make_schedule(instance);
    const OpenRunReport finished =
        engine.run(resumed, resume_options, kSeed);

    EXPECT_EQ(finished.to_json().dump(), uninterrupted.report_json)
        << "halted at event " << halt_at;
    EXPECT_EQ(resumed.fingerprint(), uninterrupted.fingerprint);
    // Cumulative end-of-run totals: a fresh registry after resume lands
    // exactly the uninterrupted run's snapshot.
    EXPECT_EQ(metrics.snapshot().dump(), uninterrupted.metrics_json);
    // The resumed trace is the uninterrupted trace's suffix.
    ASSERT_LE(tracer.events().size(), uninterrupted.trace.size());
    const std::size_t offset =
        uninterrupted.trace.size() - tracer.events().size();
    for (std::size_t k = 0; k < tracer.events().size(); ++k) {
      EXPECT_TRUE(
          same_event(tracer.events()[k], uninterrupted.trace[offset + k]))
          << "suffix event " << k << " after halting at " << halt_at;
    }
  }
}

TEST(OpenSystemEngine, ResumeRejectsSeedAndShapeMismatches) {
  const Instance instance = gen::identical_uniform(2, 10, 1.0, 10.0, 3);
  const ArrivalPlan plan = ArrivalPlan::poisson(0.1, 1);
  const UniformPeerSelector selector;
  const OpenSystemEngine engine(
      pairwise::kernel_registry().get("basic-greedy"), selector);

  OpenCheckpoint checkpoint;
  OpenSystemOptions halt_options = open_options(plan);
  halt_options.halt_after_events = 2;
  halt_options.checkpoint_out = &checkpoint;
  Schedule halted(instance);
  ASSERT_TRUE(engine.run(halted, halt_options, kSeed).halted);

  OpenSystemOptions resume_options = open_options(plan);
  resume_options.resume = &checkpoint;
  Schedule resumed = checkpoint.make_schedule(instance);
  try {
    engine.run(resumed, resume_options, kSeed + 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint was taken under seed"),
              std::string::npos);
  }

  const Instance other = gen::identical_uniform(3, 10, 1.0, 10.0, 3);
  EXPECT_THROW((void)checkpoint.make_schedule(other), std::invalid_argument);
}

// ----- heap vs mmap-backed InstanceStore -----

TEST(OpenSystemEngine, RunIsBackingInvariantOverTheMappedStore) {
  const Instance heap = gen::two_cluster_uniform(4, 2, 48, 1.0, 100.0, 12);
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("dlb_test_open_" + std::to_string(::getpid()) + ".dlbi"))
          .string();
  core::save_dlbi(heap, path);
  const ArrivalPlan plan = ArrivalPlan::bursty(0.15, 0.01, 60.0, 30.0, 21);
  {
    const core::InstanceStore store = core::InstanceStore::open_mapped(path);
    ASSERT_TRUE(store.instance().is_view());
    expect_identical(run_open(heap, open_options(plan), kSeed),
                     run_open(store.instance(), open_options(plan), kSeed));
  }
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

// ----- checkpoint parse errors -----

TEST(OpenCheckpoint, LoadRejectsCorruptHeaders) {
  std::stringstream bad("dlb-open-checkpoint v2\n");
  EXPECT_THROW((void)OpenCheckpoint::load(bad), std::runtime_error);
  std::stringstream truncated("dlb-open-checkpoint v1\nseed 1\nmachines");
  EXPECT_THROW((void)OpenCheckpoint::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace dlb::dist
