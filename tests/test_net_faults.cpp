#include "net/fault.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "core/generators.hpp"
#include "core/validation.hpp"
#include "dist/async_runner.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::net {
namespace {

TEST(FaultPlan, NamedConstructorsSetOneProbability) {
  EXPECT_DOUBLE_EQ(FaultPlan::drops(0.2, 1).drop_probability, 0.2);
  EXPECT_DOUBLE_EQ(FaultPlan::delays(0.3, 1).delay_probability, 0.3);
  EXPECT_DOUBLE_EQ(FaultPlan::duplicates(0.4, 1).duplicate_probability, 0.4);
  EXPECT_DOUBLE_EQ(FaultPlan::reorders(0.5, 1).reorder_probability, 0.5);
  const FaultPlan chaos = FaultPlan::chaos(0.1, 1);
  EXPECT_DOUBLE_EQ(chaos.drop_probability, 0.1);
  EXPECT_DOUBLE_EQ(chaos.delay_probability, 0.1);
  EXPECT_DOUBLE_EQ(chaos.duplicate_probability, 0.1);
  EXPECT_DOUBLE_EQ(chaos.reorder_probability, 0.1);
  EXPECT_FALSE(chaos.trivial());
  EXPECT_TRUE(FaultPlan{}.trivial());
}

TEST(FaultPlan, ByNameCoversEveryPlanAndRejectsUnknown) {
  EXPECT_TRUE(fault_plan_by_name("none", 0.5, 1).trivial());
  EXPECT_GT(fault_plan_by_name("drop", 0.5, 1).drop_probability, 0.0);
  EXPECT_GT(fault_plan_by_name("delay", 0.5, 1).delay_probability, 0.0);
  EXPECT_GT(fault_plan_by_name("duplicate", 0.5, 1).duplicate_probability,
            0.0);
  EXPECT_GT(fault_plan_by_name("reorder", 0.5, 1).reorder_probability, 0.0);
  EXPECT_FALSE(fault_plan_by_name("chaos", 0.5, 1).trivial());
  EXPECT_THROW(fault_plan_by_name("gremlins", 0.5, 1),
               std::invalid_argument);
}

struct NetworkFixture {
  des::Engine engine;
  ConstantLatency latency{1.0};
  stats::Rng rng{7};
  Network network{engine, latency, rng};
  std::vector<int> delivered;

  void send_tagged(int tag) {
    network.send(0, 1, [this, tag] { delivered.push_back(tag); });
  }
};

TEST(Network, DropFaultSuppressesDelivery) {
  NetworkFixture f;
  const FaultPlan plan = FaultPlan::drops(1.0, 3);
  f.network.set_fault_plan(&plan);
  for (int tag = 0; tag < 5; ++tag) f.send_tagged(tag);
  f.engine.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.network.fault_stats().dropped, 5u);
  EXPECT_EQ(f.network.messages_sent(), 5u);
}

TEST(Network, DuplicateFaultDeliversTwice) {
  NetworkFixture f;
  const FaultPlan plan = FaultPlan::duplicates(1.0, 3);
  f.network.set_fault_plan(&plan);
  f.send_tagged(42);
  f.engine.run();
  EXPECT_EQ(f.delivered, (std::vector<int>{42, 42}));
  EXPECT_EQ(f.network.fault_stats().duplicated, 1u);
}

TEST(Network, ReorderFaultDeliversBehindALaterSend) {
  NetworkFixture f;
  // Seed 2 at p=0.5: the first message draws a reorder, the second does
  // not — so the second send releases the first behind itself.
  const FaultPlan plan = FaultPlan::reorders(0.5, 2);
  f.network.set_fault_plan(&plan);
  f.send_tagged(1);  // Held back.
  EXPECT_EQ(f.network.held_messages(), 1u);
  f.send_tagged(2);  // Releases the held message behind itself.
  f.engine.run();
  EXPECT_EQ(f.delivered, (std::vector<int>{2, 1}));
  EXPECT_EQ(f.network.fault_stats().reordered, 1u);
  EXPECT_EQ(f.network.held_messages(), 0u);
}

TEST(Network, HeldMessagesWithoutALaterSendNeverDeliver) {
  // The documented edge: a reordered message with no follow-up send stays
  // held — the DES horizon, not the network, bounds the protocol.
  NetworkFixture f;
  const FaultPlan plan = FaultPlan::reorders(1.0, 3);
  f.network.set_fault_plan(&plan);
  f.send_tagged(1);
  f.send_tagged(2);  // Also reordered at p=1: held too, releases nothing.
  f.engine.run();
  EXPECT_TRUE(f.delivered.empty());
  EXPECT_EQ(f.network.held_messages(), 2u);
}

TEST(Network, DelayFaultAddsLatencyWithinBounds) {
  NetworkFixture f;
  FaultPlan plan = FaultPlan::delays(1.0, 3);
  plan.delay_lo = 2.0;
  plan.delay_hi = 3.0;
  f.network.set_fault_plan(&plan);
  double delivered_at = -1.0;
  f.network.send(0, 1, [&] { delivered_at = f.engine.now(); });
  f.engine.run();
  // Base latency 1.0 plus a delay in [2, 3).
  EXPECT_GE(delivered_at, 3.0);
  EXPECT_LT(delivered_at, 4.0);
  EXPECT_EQ(f.network.fault_stats().delayed, 1u);
}

TEST(Network, FaultDecisionsAreSeedDeterministic) {
  const auto run_once = [](std::uint64_t seed) {
    NetworkFixture f;
    const FaultPlan plan = FaultPlan::chaos(0.5, seed);
    f.network.set_fault_plan(&plan);
    for (int tag = 0; tag < 40; ++tag) f.send_tagged(tag);
    f.engine.run();
    return f.delivered;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

TEST(Network, ObsCountersMirrorFaultStats) {
  obs::Metrics metrics;
  obs::Context context{&metrics, nullptr};
  NetworkFixture f;
  const FaultPlan plan = FaultPlan::chaos(0.5, 5);
  f.network.set_fault_plan(&plan);
  f.network.attach_obs(&context);
  for (int tag = 0; tag < 60; ++tag) f.send_tagged(tag);
  f.engine.run();
  const FaultStats& stats = f.network.fault_stats();
  EXPECT_GT(stats.total(), 0u);
  EXPECT_EQ(metrics.counter("net.faults.dropped").value(), stats.dropped);
  EXPECT_EQ(metrics.counter("net.faults.delayed").value(), stats.delayed);
  EXPECT_EQ(metrics.counter("net.faults.duplicated").value(),
            stats.duplicated);
  EXPECT_EQ(metrics.counter("net.faults.reordered").value(),
            stats.reordered);
}

TEST(Network, NoPlanMeansNoFaultMetricKeys) {
  // The lazy registration keeps fault-free metric snapshots identical to
  // the pre-fault-injection ones (the bench baseline depends on that).
  obs::Metrics metrics;
  obs::Context context{&metrics, nullptr};
  NetworkFixture f;
  f.network.attach_obs(&context);
  f.send_tagged(1);
  f.engine.run();
  for (const auto& entry : metrics.counter_values()) {
    EXPECT_EQ(entry.first.rfind("net.faults.", 0), std::string::npos)
        << entry.first;
  }
}

// ----- protocol-level fault tolerance -----

dist::AsyncRunResult run_protocol(const FaultPlan* plan,
                                  std::optional<des::SimTime> timeout,
                                  Schedule& schedule) {
  const pairwise::BasicGreedyKernel kernel;
  dist::AsyncOptions options;
  options.duration = 60.0;
  options.seed = 99;
  options.fault_plan = plan;
  options.session_timeout = timeout;
  return dist::run_async(schedule, kernel, options);
}

TEST(AsyncFaults, EveryPlanTerminatesAndConservesJobs) {
  const Instance inst = gen::identical_uniform(5, 20, 1.0, 10.0, 31);
  for (const char* name : {"drop", "delay", "duplicate", "reorder",
                           "chaos"}) {
    const FaultPlan plan = fault_plan_by_name(name, 0.3, 17);
    Schedule schedule(inst, gen::random_assignment(inst, 32));
    const dist::AsyncRunResult result =
        run_protocol(&plan, 3.0, schedule);
    EXPECT_LE(result.end_time, 60.0 + 1e-9) << name;
    std::string why;
    EXPECT_TRUE(is_complete_partition(schedule, &why)) << name << ": "
                                                       << why;
    EXPECT_TRUE(schedule.check_consistency()) << name;
  }
}

TEST(AsyncFaults, DropsWithoutTimeoutStillConserveJobs) {
  // Without timers a dropped message parks its session until the horizon;
  // the run must still end with every job placed exactly once.
  const Instance inst = gen::identical_uniform(4, 12, 1.0, 10.0, 33);
  const FaultPlan plan = FaultPlan::drops(0.5, 21);
  Schedule schedule(inst, gen::random_assignment(inst, 34));
  const dist::AsyncRunResult result =
      run_protocol(&plan, std::nullopt, schedule);
  EXPECT_GT(result.faults.dropped, 0u);
  std::string why;
  EXPECT_TRUE(is_complete_partition(schedule, &why)) << why;
}

TEST(AsyncFaults, TimeoutRecoversDroppedSessions) {
  const Instance inst = gen::identical_uniform(6, 30, 1.0, 10.0, 35);
  const FaultPlan plan = FaultPlan::drops(0.4, 23);
  Schedule schedule(inst, Assignment::all_on(30, 0));
  const Cost initial = schedule.makespan();
  const dist::AsyncRunResult result = run_protocol(&plan, 3.0, schedule);
  EXPECT_GT(result.sessions_timed_out, 0u);
  // Recovery keeps balancing going: the schedule still improves.
  EXPECT_LT(result.final_makespan, initial);
}

TEST(AsyncFaults, DuplicatesAndReordersAreRecognisedAsStale) {
  const Instance inst = gen::identical_uniform(5, 25, 1.0, 10.0, 37);
  const FaultPlan plan = FaultPlan::chaos(0.4, 29);
  Schedule schedule(inst, gen::random_assignment(inst, 38));
  const dist::AsyncRunResult result = run_protocol(&plan, 3.0, schedule);
  EXPECT_GT(result.faults.duplicated + result.faults.reordered, 0u);
  EXPECT_GT(result.stale_messages, 0u);
  std::string why;
  EXPECT_TRUE(is_complete_partition(schedule, &why)) << why;
}

TEST(AsyncFaults, ReorderedDuplicatesNeverReachTheAcceptPathTwice) {
  // Every message is duplicated AND may be reordered behind a later send,
  // while the 3.0s session timeout keeps retiring sessions whose replies
  // went missing in the shuffle. The accept path must see each logical
  // message at most once: every spurious copy lands in the stale counter,
  // and a committed exchange still needs at least one TRANSFER instant,
  // so exchanges can never exceed the TRANSFER count.
  const Instance inst = gen::identical_uniform(6, 30, 1.0, 10.0, 45);
  FaultPlan plan = FaultPlan::reorders(0.5, 47);
  plan.duplicate_probability = 1.0;

  obs::Metrics metrics;
  obs::Tracer tracer;
  const obs::Context obs{&metrics, &tracer};
  const pairwise::BasicGreedyKernel kernel;
  dist::AsyncOptions options;
  options.duration = 60.0;
  options.seed = 99;
  options.fault_plan = &plan;
  options.session_timeout = 3.0;
  options.obs = &obs;

  Schedule schedule(inst, gen::random_assignment(inst, 46));
  const dist::AsyncRunResult result = dist::run_async(schedule, kernel,
                                                      options);

  // Each message went out twice, so at least one copy per completed
  // session arrived after its session moved on.
  EXPECT_EQ(result.faults.duplicated, result.messages);
  EXPECT_GT(result.stale_messages, 0u);

  // The struct tally and the metrics registry must agree on staleness.
  bool found_stale_counter = false;
  for (const auto& [name, value] : metrics.counter_values()) {
    if (name != "async.stale_messages") continue;
    found_stale_counter = true;
    EXPECT_EQ(value, result.stale_messages);
  }
  EXPECT_TRUE(found_stale_counter);

  std::uint64_t transfers = 0;
  for (const auto& event : tracer.events()) {
    if (event.name == "TRANSFER") ++transfers;
  }
  EXPECT_GT(transfers, 0u);
  EXPECT_LE(result.exchanges, transfers);

  std::string why;
  EXPECT_TRUE(is_complete_partition(schedule, &why)) << why;
  EXPECT_TRUE(schedule.check_consistency());
}

TEST(AsyncFaults, FaultyRunsReplayDeterministically) {
  const Instance inst = gen::identical_uniform(5, 20, 1.0, 10.0, 39);
  const FaultPlan plan = FaultPlan::chaos(0.3, 41);
  Schedule first(inst, gen::random_assignment(inst, 40));
  Schedule second(inst, gen::random_assignment(inst, 40));
  const dist::AsyncRunResult r1 = run_protocol(&plan, 3.0, first);
  const dist::AsyncRunResult r2 = run_protocol(&plan, 3.0, second);
  EXPECT_EQ(first.assignment(), second.assignment());
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_EQ(r1.exchanges, r2.exchanges);
  EXPECT_EQ(r1.faults.total(), r2.faults.total());
}

TEST(AsyncFaults, ReliableRunUnchangedByTheFaultMachinery) {
  // fault_plan = nullptr must reproduce the exact pre-fault behaviour:
  // same schedule, same message count, no fault or stale accounting.
  const Instance inst = gen::identical_uniform(5, 20, 1.0, 10.0, 43);
  Schedule schedule(inst, gen::random_assignment(inst, 44));
  const dist::AsyncRunResult result =
      run_protocol(nullptr, std::nullopt, schedule);
  EXPECT_EQ(result.faults.total(), 0u);
  EXPECT_EQ(result.stale_messages, 0u);
  EXPECT_EQ(result.sessions_timed_out, 0u);
}

}  // namespace
}  // namespace dlb::net
