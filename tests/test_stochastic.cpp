// Stochastic cost-model integration tests: the zero-variance equivalence
// anchor (an all-degenerate model must reproduce the deterministic run
// byte for byte -- schedule fingerprint, RunReport JSON, trace points --
// across the sequential and parallel engines at 1, 4 and 8 threads) and
// thread-count byte-identity for genuinely stochastic kernels. The fuzz
// harness (src/check/oracles.cpp) sweeps randomized variants of the same
// properties; these are the pinned, always-on ctest versions.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "dist/exchange_engine.hpp"
#include "dist/parallel_exchange_engine.hpp"
#include "dist/peer_selector.hpp"
#include "pairwise/kernel_registry.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace dlb {
namespace {

constexpr std::uint64_t kSeed = 4242;

Instance base_instance() {
  return gen::uniform_unrelated(6, 48, 1.0, 100.0, 17);
}

Instance with_model(Instance instance, const std::string& spec) {
  instance.set_cost_model(cost::CostModel(std::vector<cost::Dist>(
      instance.num_jobs(), cost::parse_dist(spec))));
  return instance;
}

struct SeqRun {
  std::uint64_t fingerprint = 0;
  std::string report_json;
  std::vector<dist::ExchangeTracePoint> trace;
};

SeqRun run_seq(const Instance& instance, const std::string& kernel_name,
               const dist::PeerSelector& selector) {
  const pairwise::PairKernel& kernel =
      pairwise::kernel_registry().get(kernel_name);
  Schedule schedule(instance, gen::random_assignment(instance, 9));
  dist::EngineOptions options;
  options.max_exchanges = 200;
  options.record_trace = true;
  stats::Rng rng = stats::Rng::stream(kSeed, 1);
  const dist::RunResult result =
      dist::ExchangeEngine(kernel, selector).run(schedule, options, rng);
  SeqRun run;
  run.fingerprint = schedule.fingerprint();
  run.report_json = result.to_json().dump();
  run.trace = result.exchange_trace;
  return run;
}

void expect_same_seq(const SeqRun& a, const SeqRun& b, const char* label) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << label;
  EXPECT_EQ(a.report_json, b.report_json) << label;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t x = 0; x < a.trace.size(); ++x) {
    EXPECT_EQ(a.trace[x].makespan, b.trace[x].makespan) << label;
    EXPECT_EQ(a.trace[x].changed, b.trace[x].changed) << label;
    EXPECT_EQ(a.trace[x].migrations, b.trace[x].migrations) << label;
  }
}

struct ParRun {
  std::uint64_t fingerprint = 0;
  std::string report_json;
  std::vector<dist::EpochTracePoint> trace;
};

ParRun run_par(const Instance& instance, const std::string& kernel_name,
               const dist::PeerSelector& selector,
               parallel::ThreadPool* pool) {
  const pairwise::PairKernel& kernel =
      pairwise::kernel_registry().get(kernel_name);
  Schedule schedule(instance, gen::random_assignment(instance, 9));
  dist::ParallelEngineOptions options;
  options.max_exchanges = 200;
  options.record_trace = true;
  options.pool = pool;
  const dist::ParallelRunResult result =
      dist::ParallelExchangeEngine(kernel, selector)
          .run(schedule, options, kSeed);
  ParRun run;
  run.fingerprint = schedule.fingerprint();
  run.report_json = result.to_json().dump();
  run.trace = result.epoch_trace;
  return run;
}

void expect_same_par(const ParRun& a, const ParRun& b, const char* label) {
  EXPECT_EQ(a.fingerprint, b.fingerprint) << label;
  EXPECT_EQ(a.report_json, b.report_json) << label;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << label;
  for (std::size_t x = 0; x < a.trace.size(); ++x) {
    EXPECT_EQ(a.trace[x].makespan, b.trace[x].makespan) << label;
    EXPECT_EQ(a.trace[x].sessions, b.trace[x].sessions) << label;
    EXPECT_EQ(a.trace[x].migrations, b.trace[x].migrations) << label;
  }
}

/// Every degenerate model shape the text format can spell.
const std::vector<std::string> kDegenerateSpecs = {
    "det:1", "det:2.5", "normal:0", "lognormal:0", "pareto:3,1.75,1.75"};

// ---------------------------------------------------- sequential engine

TEST(ZeroVariance, SequentialQuantileKernelMatchesMeanKernelByteForByte) {
  const Instance plain = base_instance();
  const dist::MaxLoadPeerSelector mean_selector;
  const dist::MaxLoadPeerSelector q95_selector(
      dist::MaxLoadPeerSelector::Mode::kQuantile);
  const SeqRun mean = run_seq(plain, "basic-greedy", mean_selector);
  for (const std::string& spec : kDegenerateSpecs) {
    const Instance degenerate = with_model(base_instance(), spec);
    const SeqRun risk = run_seq(degenerate, "basic-greedy_q95", q95_selector);
    expect_same_seq(mean, risk, spec.c_str());
  }
}

TEST(ZeroVariance, SequentialEffsizeKernelMatchesMeanKernelByteForByte) {
  const Instance plain = base_instance();
  const dist::MaxLoadPeerSelector mean_selector;
  const dist::MaxLoadPeerSelector eff_selector(
      dist::MaxLoadPeerSelector::Mode::kEffectiveSize);
  const SeqRun mean = run_seq(plain, "basic-greedy", mean_selector);
  for (const std::string& spec : kDegenerateSpecs) {
    const Instance degenerate = with_model(base_instance(), spec);
    const SeqRun risk =
        run_seq(degenerate, "basic-greedy_effsize", eff_selector);
    expect_same_seq(mean, risk, spec.c_str());
  }
}

// ------------------------------------------------------ parallel engine

TEST(ZeroVariance, ParallelRiskRunMatchesMeanRunAtOneFourAndEightThreads) {
  const Instance plain = base_instance();
  const Instance degenerate = with_model(base_instance(), "lognormal:0");
  const dist::MaxLoadPeerSelector mean_selector;
  const dist::MaxLoadPeerSelector q95_selector(
      dist::MaxLoadPeerSelector::Mode::kQuantile);

  const ParRun mean = run_par(plain, "basic-greedy", mean_selector, nullptr);
  const ParRun risk_inline =
      run_par(degenerate, "basic-greedy_q95", q95_selector, nullptr);
  expect_same_par(mean, risk_inline, "inline");

  for (const std::size_t threads : {1u, 4u, 8u}) {
    parallel::ThreadPool pool(threads);
    const ParRun risk =
        run_par(degenerate, "basic-greedy_q95", q95_selector, &pool);
    expect_same_par(mean, risk,
                    ("threads=" + std::to_string(threads)).c_str());
  }
}

// ------------------------------- stochastic kernels, thread invariance

TEST(StochasticThreadInvariance, RiskKernelsAreByteIdenticalAtAnyThreadCount) {
  const dist::UniformPeerSelector selector;
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"basic-greedy_q95", "normal:0.3"},
      {"basic-greedy_effsize", "lognormal:0.6"},
      {"basic-greedy_q95", "pareto:2.2,0.5,6"},
  };
  for (const auto& [kernel_name, spec] : cases) {
    const Instance instance = with_model(base_instance(), spec);
    const ParRun inline_run = run_par(instance, kernel_name, selector,
                                      nullptr);
    for (const std::size_t threads : {1u, 4u, 8u}) {
      parallel::ThreadPool pool(threads);
      const ParRun pooled = run_par(instance, kernel_name, selector, &pool);
      expect_same_par(
          inline_run, pooled,
          (kernel_name + "/" + spec + "/threads=" + std::to_string(threads))
              .c_str());
    }
  }
}

// A risk-aware run on a *heterogeneous* stochastic model must actually
// diverge from the mean run somewhere (otherwise the surrogate is dead
// code). The model must mix volatile and certain jobs: with the same
// distribution on every job the surrogate is a uniform scaling of the
// cost matrix, which greedy splits are invariant to by design.
TEST(StochasticThreadInvariance, StrongModelChangesTheScheduleButNotTwice) {
  const Instance plain = base_instance();
  Instance stochastic = base_instance();
  {
    std::vector<cost::Dist> dists(stochastic.num_jobs(),
                                  cost::parse_dist("det:1"));
    for (JobId j = 0; j < stochastic.num_jobs(); j += 2) {
      dists[j] = cost::parse_dist("lognormal:1.2");
    }
    stochastic.set_cost_model(cost::CostModel(std::move(dists)));
  }
  const dist::UniformPeerSelector selector;
  const SeqRun mean = run_seq(plain, "basic-greedy", selector);
  const SeqRun risk1 = run_seq(stochastic, "basic-greedy_q95", selector);
  const SeqRun risk2 = run_seq(stochastic, "basic-greedy_q95", selector);
  EXPECT_NE(mean.fingerprint, risk1.fingerprint);
  expect_same_seq(risk1, risk2, "replay");
}

}  // namespace
}  // namespace dlb
