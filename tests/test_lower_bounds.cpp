#include "core/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"

namespace dlb {
namespace {

TEST(LowerBounds, MaxMinCostPicksHardestJob) {
  const Instance inst = Instance::unrelated({{10.0, 1.0}, {4.0, 8.0}});
  // Job 0 best = 4, job 1 best = 1 -> bound 4.
  EXPECT_DOUBLE_EQ(max_min_cost_bound(inst), 4.0);
}

TEST(LowerBounds, MinWorkAveragesCheapestCosts) {
  const Instance inst = Instance::unrelated({{2.0, 6.0}, {4.0, 2.0}});
  EXPECT_DOUBLE_EQ(min_work_bound(inst), (2.0 + 2.0) / 2.0);
}

TEST(LowerBounds, FractionalTwoClusterBalancedCase) {
  // 1+1 machines; one job each way: costs symmetric.
  const Instance inst =
      Instance::clustered({1, 1}, {{1.0, 4.0}, {4.0, 1.0}});
  // Put job 0 fully on cluster 1 and job 1 fully on cluster 2: max(1,1)=1.
  EXPECT_DOUBLE_EQ(two_cluster_fractional_opt(inst), 1.0);
}

TEST(LowerBounds, FractionalSplitsTheCrossingJob) {
  // One machine per cluster, a single job costing 1 on both: fractional
  // optimum splits it in half.
  const Instance inst = Instance::clustered({1, 1}, {{1.0}, {1.0}});
  EXPECT_DOUBLE_EQ(two_cluster_fractional_opt(inst), 0.5);
}

TEST(LowerBounds, FractionalRespectsClusterSizes) {
  // Cluster 1 has 4 machines, cluster 2 has 1; identical costs. All work on
  // cluster 1 would be W/4, all on cluster 2 W/1; the optimum spreads 4/5
  // of the work on cluster 1: W * (1/5).
  const Instance inst =
      Instance::clustered({4, 1}, {{10.0, 10.0}, {10.0, 10.0}});
  EXPECT_NEAR(two_cluster_fractional_opt(inst), 4.0, 1e-9);
}

TEST(LowerBounds, FractionalRejectsWrongShape) {
  const Instance identical = Instance::identical(3, {1.0});
  EXPECT_THROW((void)two_cluster_fractional_opt(identical),
               std::invalid_argument);
  const Instance related = Instance::related({1.0, 2.0}, {1.0});
  EXPECT_THROW((void)two_cluster_fractional_opt(related),
               std::invalid_argument);
}

TEST(LowerBounds, CombinedBoundIsMaxOfParts) {
  const Instance inst = gen::two_cluster_uniform(3, 2, 12, 1.0, 10.0, 5);
  const Cost combined = makespan_lower_bound(inst);
  EXPECT_GE(combined, max_min_cost_bound(inst));
  EXPECT_GE(combined, min_work_bound(inst));
  EXPECT_GE(combined, two_cluster_fractional_opt(inst) - 1e-12);
}

class BoundsVsExactSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundsVsExactSweep, NoBoundExceedsTheOptimum) {
  // Small random two-cluster instances: every lower bound must be <= OPT.
  const Instance inst =
      gen::two_cluster_uniform(2, 2, 8, 1.0, 20.0, GetParam());
  const auto exact = centralized::solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  EXPECT_LE(makespan_lower_bound(inst), exact.optimal + 1e-9);
}

TEST_P(BoundsVsExactSweep, UnrelatedBoundsHold) {
  const Instance inst = gen::uniform_unrelated(3, 7, 1.0, 30.0, GetParam());
  const auto exact = centralized::solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  EXPECT_LE(max_min_cost_bound(inst), exact.optimal + 1e-9);
  EXPECT_LE(min_work_bound(inst), exact.optimal + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsVsExactSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace dlb
