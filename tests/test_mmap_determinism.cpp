// The InstanceStore determinism invariant, end to end: a run over the
// mmap-backed view of an instance is byte-identical to the same run over
// the heap-backed original — schedule fingerprint, RunReport JSON, obs
// metric snapshot, and every trace event — for both exchange engines and
// at every thread count. A checkpoint taken through the mapped store must
// resume into the uninterrupted heap run's bytes, so restart survival and
// the storage backing compose.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "core/instance_store.hpp"
#include "core/schedule.hpp"
#include "dist/checkpoint.hpp"
#include "dist/exchange_engine.hpp"
#include "dist/parallel_exchange_engine.hpp"
#include "dist/selector_registry.hpp"
#include "obs/obs.hpp"
#include "pairwise/kernel_registry.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace dlb {
namespace {

constexpr std::uint64_t kSeed = 41;

/// A unique temp path removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("dlb_test_mmap_" + std::to_string(::getpid()) + "_" + tag))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

/// Everything a run emits, as comparable bytes.
struct Outcome {
  std::string report_json;
  std::uint64_t fingerprint = 0;
  std::string metrics_json;
  std::vector<obs::TraceEvent> trace;
};

bool same_event(const obs::TraceEvent& a, const obs::TraceEvent& b) {
  return a.ts_us == b.ts_us && a.tid == b.tid && a.phase == b.phase &&
         a.name == b.name && a.category == b.category && a.args == b.args;
}

void expect_identical(const Outcome& heap, const Outcome& mapped) {
  EXPECT_EQ(heap.report_json, mapped.report_json);
  EXPECT_EQ(heap.fingerprint, mapped.fingerprint);
  EXPECT_EQ(heap.metrics_json, mapped.metrics_json);
  ASSERT_EQ(heap.trace.size(), mapped.trace.size());
  for (std::size_t k = 0; k < heap.trace.size(); ++k) {
    EXPECT_TRUE(same_event(heap.trace[k], mapped.trace[k]))
        << "trace event " << k << " differs between heap and mapped runs";
  }
}

Outcome run_seq(const Instance& inst) {
  obs::Metrics metrics;
  obs::Tracer tracer;
  const obs::Context context{&metrics, &tracer};
  Schedule s(inst, gen::random_assignment(inst, 2));
  dist::EngineOptions options;
  options.max_exchanges = 12 * inst.num_machines();
  options.obs = &context;
  stats::Rng rng(kSeed);
  const dist::RunResult result =
      dist::ExchangeEngine(pairwise::kernel_registry().get("basic-greedy"),
                           dist::selector_registry().get("uniform"))
          .run(s, options, rng);
  return {static_cast<const dist::RunReport&>(result).to_json().dump(),
          s.fingerprint(), metrics.snapshot().dump(), tracer.events()};
}

Outcome run_par(const Instance& inst, parallel::ThreadPool* pool) {
  obs::Metrics metrics;
  obs::Tracer tracer;
  const obs::Context context{&metrics, &tracer};
  Schedule s(inst, gen::random_assignment(inst, 2));
  dist::ParallelEngineOptions options;
  options.max_exchanges = 12 * inst.num_machines();
  options.pool = pool;
  options.obs = &context;
  const dist::ParallelRunResult result =
      dist::ParallelExchangeEngine(
          pairwise::kernel_registry().get("basic-greedy"),
          dist::selector_registry().get("uniform"))
          .run(s, options, kSeed);
  return {static_cast<const dist::RunReport&>(result).to_json().dump(),
          s.fingerprint(), metrics.snapshot().dump(), tracer.events()};
}

Instance test_instance() {
  // Two-cluster heterogeneous — the paper's regime and the perf bench's
  // workload shape, large enough for several epochs of real migration.
  return gen::two_cluster_uniform(6, 4, 80, 1.0, 100.0, 9);
}

TEST(MmapDeterminism, SequentialEngineIsBackingInvariant) {
  const Instance heap = test_instance();
  TempFile file("seq.dlbi");
  core::save_dlbi(heap, file.path());
  const core::InstanceStore store = core::InstanceStore::open_mapped(
      file.path());
  ASSERT_TRUE(store.instance().is_view());
  expect_identical(run_seq(heap), run_seq(store.instance()));
}

TEST(MmapDeterminism, ParallelEngineIsBackingInvariantAtEveryThreadCount) {
  const Instance heap = test_instance();
  TempFile file("par.dlbi");
  core::save_dlbi(heap, file.path());
  const core::InstanceStore store = core::InstanceStore::open_mapped(
      file.path());

  const Outcome reference = run_par(heap, nullptr);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4},
                                    std::size_t{8}}) {
    parallel::ThreadPool pool(threads);
    const Outcome heap_run = run_par(heap, &pool);
    const Outcome mapped_run = run_par(store.instance(), &pool);
    expect_identical(heap_run, mapped_run);
    // And thread-count invariance holds through the mapping too.
    expect_identical(reference, mapped_run);
  }
}

TEST(MmapDeterminism, CheckpointResumeThroughMappedStoreMatchesHeapRun) {
  const Instance heap = test_instance();
  TempFile file("ck.dlbi");
  core::save_dlbi(heap, file.path());

  const auto run = [](const Instance& inst, const dist::Checkpoint* resume,
                      std::optional<std::uint64_t> halt,
                      dist::Checkpoint* out) {
    Schedule s = resume != nullptr
                     ? resume->make_schedule(inst)
                     : Schedule(inst, gen::random_assignment(inst, 2));
    dist::ParallelEngineOptions options;
    options.max_exchanges = 12 * inst.num_machines();
    options.resume = resume;
    options.halt_after_epoch = halt;
    options.checkpoint_out = out;
    const dist::ParallelRunResult result =
        dist::ParallelExchangeEngine(
            pairwise::kernel_registry().get("basic-greedy"),
            dist::selector_registry().get("uniform"))
            .run(s, options, kSeed);
    return std::pair{result, s.fingerprint()};
  };

  const auto [uninterrupted, heap_fp] =
      run(heap, nullptr, std::nullopt, nullptr);
  ASSERT_GT(uninterrupted.epochs, 2u);

  // Halt mid-run over the mapped store, reopen the store (a restart), and
  // resume over the fresh mapping: the composite must reproduce the
  // uninterrupted heap run bit for bit.
  dist::Checkpoint snapshot;
  {
    const core::InstanceStore store =
        core::InstanceStore::open_mapped(file.path());
    const auto [halted, halted_fp] = run(store.instance(), nullptr,
                                         uninterrupted.epochs / 2, &snapshot);
    ASSERT_TRUE(halted.halted);
  }
  const core::InstanceStore reopened =
      core::InstanceStore::open_mapped(file.path());
  const auto [resumed, resumed_fp] =
      run(reopened.instance(), &snapshot, std::nullopt, nullptr);

  EXPECT_EQ(resumed_fp, heap_fp);
  EXPECT_EQ(static_cast<const dist::RunReport&>(resumed).to_json().dump(),
            static_cast<const dist::RunReport&>(uninterrupted)
                .to_json()
                .dump());
}

}  // namespace
}  // namespace dlb
