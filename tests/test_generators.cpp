#include "core/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/schedule.hpp"

namespace dlb::gen {
namespace {

TEST(Generators, UniformUnrelatedShapeAndRange) {
  const Instance inst = uniform_unrelated(4, 10, 5.0, 9.0, 1);
  EXPECT_EQ(inst.num_machines(), 4u);
  EXPECT_EQ(inst.num_jobs(), 10u);
  EXPECT_EQ(inst.num_groups(), 4u);
  for (MachineId i = 0; i < 4; ++i) {
    for (JobId j = 0; j < 10; ++j) {
      EXPECT_GE(inst.cost(i, j), 5.0);
      EXPECT_LT(inst.cost(i, j), 9.0);
    }
  }
}

TEST(Generators, SameSeedSameInstance) {
  const Instance a = uniform_unrelated(3, 5, 1.0, 10.0, 42);
  const Instance b = uniform_unrelated(3, 5, 1.0, 10.0, 42);
  for (MachineId i = 0; i < 3; ++i) {
    for (JobId j = 0; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(a.cost(i, j), b.cost(i, j));
    }
  }
}

TEST(Generators, DifferentSeedsDifferentInstances) {
  const Instance a = uniform_unrelated(3, 5, 1.0, 10.0, 1);
  const Instance b = uniform_unrelated(3, 5, 1.0, 10.0, 2);
  bool any_diff = false;
  for (MachineId i = 0; i < 3; ++i) {
    for (JobId j = 0; j < 5; ++j) {
      any_diff |= a.cost(i, j) != b.cost(i, j);
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generators, TwoClusterPaperWorkloadShape) {
  // The paper's Section VII-B instance family.
  const Instance inst = two_cluster_uniform(64, 32, 768, 1.0, 1000.0, 7);
  EXPECT_EQ(inst.num_machines(), 96u);
  EXPECT_EQ(inst.num_groups(), 2u);
  EXPECT_EQ(inst.machines_in_group(0).size(), 64u);
  EXPECT_EQ(inst.machines_in_group(1).size(), 32u);
  EXPECT_TRUE(inst.unit_scales());
  // Within a cluster all machines agree on every job's cost.
  EXPECT_DOUBLE_EQ(inst.cost(0, 5), inst.cost(63, 5));
  EXPECT_DOUBLE_EQ(inst.cost(64, 5), inst.cost(95, 5));
}

TEST(Generators, IdenticalUniformIsOneGroup) {
  const Instance inst = identical_uniform(96, 768, 1.0, 1000.0, 3);
  EXPECT_EQ(inst.num_groups(), 1u);
  EXPECT_DOUBLE_EQ(inst.cost(0, 0), inst.cost(95, 0));
}

TEST(Generators, RelatedUniformSpeedsApply) {
  const Instance inst = related_uniform(5, 10, 1.0, 10.0, 1.0, 4.0, 11);
  EXPECT_EQ(inst.num_groups(), 1u);
  // Cost ratios between machines are job-independent.
  const double ratio = inst.cost(0, 0) / inst.cost(1, 0);
  for (JobId j = 1; j < 10; ++j) {
    EXPECT_NEAR(inst.cost(0, j) / inst.cost(1, j), ratio, 1e-9);
  }
}

TEST(Generators, TypedUniformDeclaresDenseTypes) {
  const Instance inst = typed_uniform(4, 30, 5, 1.0, 10.0, 13);
  ASSERT_TRUE(inst.has_job_types());
  EXPECT_EQ(inst.num_job_types(), 5u);
  // Jobs of equal type share cost rows.
  for (JobId a = 0; a < 30; ++a) {
    for (JobId b = a + 1; b < 30; ++b) {
      if (inst.job_type(a) != inst.job_type(b)) continue;
      for (MachineId i = 0; i < 4; ++i) {
        EXPECT_DOUBLE_EQ(inst.cost(i, a), inst.cost(i, b));
      }
    }
  }
}

TEST(Generators, TypedUniformRejectsBadShapes) {
  EXPECT_THROW(typed_uniform(2, 5, 0, 1.0, 2.0, 1), std::invalid_argument);
  EXPECT_THROW(typed_uniform(2, 5, 6, 1.0, 2.0, 1), std::invalid_argument);
}

TEST(Generators, CpuGpuAffinityShape) {
  const Instance inst = cpu_gpu_affinity(8, 4, 50, 10.0, 100.0, 0.5, 10.0, 17);
  EXPECT_EQ(inst.num_groups(), 2u);
  EXPECT_EQ(inst.machines_in_group(0).size(), 8u);
  EXPECT_EQ(inst.machines_in_group(1).size(), 4u);
  // Affine jobs should be much faster on the GPU and vice versa: check the
  // cost ratio distribution is bimodal-ish (some < 1, some > 1).
  int gpu_wins = 0;
  int cpu_wins = 0;
  for (JobId j = 0; j < 50; ++j) {
    (inst.group_cost(1, j) < inst.group_cost(0, j) ? gpu_wins : cpu_wins)++;
  }
  EXPECT_GT(gpu_wins, 5);
  EXPECT_GT(cpu_wins, 5);
}

TEST(Generators, LognormalCostsStayInRange) {
  const Instance inst =
      two_cluster_lognormal(3, 2, 200, 5.0, 1.0, 1.0, 5000.0, 19);
  EXPECT_EQ(inst.num_groups(), 2u);
  for (GroupId g = 0; g < 2; ++g) {
    for (JobId j = 0; j < 200; ++j) {
      EXPECT_GE(inst.group_cost(g, j), 1.0);
      EXPECT_LE(inst.group_cost(g, j), 5000.0);
    }
  }
  EXPECT_THROW(two_cluster_lognormal(1, 1, 5, 1.0, -1.0, 1.0, 10.0, 1),
               std::invalid_argument);
}

TEST(Generators, LognormalIsHeavyTailed) {
  const Instance inst =
      two_cluster_lognormal(1, 1, 2000, 5.0, 1.0, 1.0, 1e6, 21);
  // Median of exp(N(5,1)) is e^5 ~ 148; mean ~ e^5.5 ~ 245.
  Schedule s(inst, Assignment::all_on(2000, 0));
  const double mean = s.load(0) / 2000.0;
  EXPECT_GT(mean, 180.0);
  EXPECT_LT(mean, 330.0);
}

TEST(Generators, BimodalModesAreSharedAcrossClusters) {
  const Instance inst =
      two_cluster_bimodal(2, 2, 300, 1.0, 10.0, 900.0, 1000.0, 0.2, 23);
  int long_jobs = 0;
  for (JobId j = 0; j < 300; ++j) {
    const bool long1 = inst.group_cost(0, j) >= 900.0;
    const bool long2 = inst.group_cost(1, j) >= 900.0;
    // The mode is per-job: both clusters agree.
    EXPECT_EQ(long1, long2) << "job " << j;
    if (long1) ++long_jobs;
  }
  EXPECT_NEAR(long_jobs, 60, 25);
}

TEST(Generators, CorrelatedRhoOneMakesClustersIdentical) {
  const Instance inst = two_cluster_correlated(2, 2, 50, 1.0, 100.0, 1.0, 25);
  for (JobId j = 0; j < 50; ++j) {
    EXPECT_DOUBLE_EQ(inst.group_cost(0, j), inst.group_cost(1, j));
  }
}

TEST(Generators, CorrelatedRhoZeroIsIndependent) {
  const Instance inst = two_cluster_correlated(2, 2, 500, 1.0, 100.0, 0.0, 27);
  // Sample correlation of the two cost rows should be near zero.
  double mean1 = 0.0;
  double mean2 = 0.0;
  for (JobId j = 0; j < 500; ++j) {
    mean1 += inst.group_cost(0, j);
    mean2 += inst.group_cost(1, j);
  }
  mean1 /= 500.0;
  mean2 /= 500.0;
  double cov = 0.0;
  double var1 = 0.0;
  double var2 = 0.0;
  for (JobId j = 0; j < 500; ++j) {
    const double d1 = inst.group_cost(0, j) - mean1;
    const double d2 = inst.group_cost(1, j) - mean2;
    cov += d1 * d2;
    var1 += d1 * d1;
    var2 += d2 * d2;
  }
  EXPECT_LT(std::abs(cov / std::sqrt(var1 * var2)), 0.15);
  EXPECT_THROW(two_cluster_correlated(1, 1, 5, 1.0, 10.0, 1.5, 1),
               std::invalid_argument);
}

TEST(Generators, PerturbedCopyPreservesStructure) {
  const Instance base = two_cluster_uniform(3, 2, 40, 10.0, 100.0, 29);
  const Instance noisy = perturbed_copy(base, 0.2, 30);
  EXPECT_EQ(noisy.num_groups(), base.num_groups());
  EXPECT_EQ(noisy.num_machines(), base.num_machines());
  for (MachineId i = 0; i < base.num_machines(); ++i) {
    EXPECT_EQ(noisy.group_of(i), base.group_of(i));
  }
  for (GroupId g = 0; g < 2; ++g) {
    for (JobId j = 0; j < 40; ++j) {
      const double factor = noisy.group_cost(g, j) / base.group_cost(g, j);
      EXPECT_GE(factor, 0.8 - 1e-12);
      EXPECT_LE(factor, 1.2 + 1e-12);
    }
  }
}

TEST(Generators, PerturbedCopyZeroNoiseIsIdentity) {
  const Instance base = uniform_unrelated(3, 10, 1.0, 50.0, 31);
  const Instance copy = perturbed_copy(base, 0.0, 32);
  for (MachineId i = 0; i < 3; ++i) {
    for (JobId j = 0; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(copy.cost(i, j), base.cost(i, j));
    }
  }
  EXPECT_THROW(perturbed_copy(base, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(perturbed_copy(base, -0.1, 1), std::invalid_argument);
}

TEST(Generators, PerturbedCopyDropsJobTypes) {
  const Instance typed = typed_uniform(3, 12, 3, 1.0, 10.0, 33);
  ASSERT_TRUE(typed.has_job_types());
  const Instance noisy = perturbed_copy(typed, 0.1, 34);
  EXPECT_FALSE(noisy.has_job_types());
}

TEST(Generators, RandomAssignmentCompleteAndSeeded) {
  const Instance inst = uniform_unrelated(4, 20, 1.0, 5.0, 1);
  const Assignment a = random_assignment(inst, 9);
  const Assignment b = random_assignment(inst, 9);
  EXPECT_TRUE(a.is_complete());
  EXPECT_EQ(a, b);
  const Assignment c = random_assignment(inst, 10);
  EXPECT_NE(a, c);
}

TEST(Generators, RejectsBadCostRange) {
  EXPECT_THROW(uniform_unrelated(2, 2, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(uniform_unrelated(2, 2, 5.0, 1.0, 1), std::invalid_argument);
}

TEST(AdversarialCases, Table1TrapStructure) {
  const auto trap = table1_work_stealing_trap(100.0);
  EXPECT_EQ(trap.instance.num_machines(), 3u);
  EXPECT_EQ(trap.instance.num_jobs(), 5u);
  EXPECT_DOUBLE_EQ(trap.optimal_makespan, 2.0);
  // Every machine's *first* job keeps it busy exactly until n = 100.
  Schedule s(trap.instance, trap.initial);
  EXPECT_DOUBLE_EQ(s.load(1), 100.0);
  EXPECT_DOUBLE_EQ(s.load(2), 100.0);
  EXPECT_DOUBLE_EQ(s.load(0), 102.0);  // n + the two cheap followers
  // The optimum of 2 is achievable: jobs 0,1 on A; 2,3 on B; 4 on C.
  Schedule opt(trap.instance);
  opt.assign(0, 0);
  opt.assign(1, 0);
  opt.assign(2, 1);
  opt.assign(3, 1);
  opt.assign(4, 2);
  EXPECT_DOUBLE_EQ(opt.makespan(), 2.0);
}

TEST(AdversarialCases, Table2TrapHasMakespanN) {
  const auto trap = table2_pairwise_trap(50.0);
  Schedule s(trap.instance, trap.initial);
  EXPECT_DOUBLE_EQ(s.makespan(), 50.0);
  EXPECT_DOUBLE_EQ(trap.optimal_makespan, 1.0);
  // The diagonal placement achieves 1.
  Schedule opt(trap.instance);
  opt.assign(0, 0);
  opt.assign(1, 1);
  opt.assign(2, 2);
  EXPECT_DOUBLE_EQ(opt.makespan(), 1.0);
}

TEST(AdversarialCases, TrapsRejectTrivialN) {
  EXPECT_THROW(table1_work_stealing_trap(1.0), std::invalid_argument);
  EXPECT_THROW(table2_pairwise_trap(1.0), std::invalid_argument);
}

}  // namespace
}  // namespace dlb::gen
