#include "dist/dlbkc.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"
#include "dist/dlb2c.hpp"

namespace dlb::dist {
namespace {

TEST(MultiClusterGenerator, ShapeAndDeterminism) {
  const Instance a = gen::multi_cluster_uniform({4, 3, 2}, 30, 1.0, 10.0, 5);
  EXPECT_EQ(a.num_groups(), 3u);
  EXPECT_EQ(a.num_machines(), 9u);
  EXPECT_EQ(a.machines_in_group(2).size(), 2u);
  const Instance b = gen::multi_cluster_uniform({4, 3, 2}, 30, 1.0, 10.0, 5);
  for (GroupId g = 0; g < 3; ++g) {
    for (JobId j = 0; j < 30; ++j) {
      EXPECT_DOUBLE_EQ(a.group_cost(g, j), b.group_cost(g, j));
    }
  }
  EXPECT_THROW(gen::multi_cluster_uniform({}, 5, 1.0, 2.0, 1),
               std::invalid_argument);
}

TEST(DlbKc, RejectsScaledInstances) {
  const Instance related = Instance::related({1.0, 2.0}, {1.0, 2.0});
  Schedule s(related, Assignment::all_on(2, 0));
  const DlbKcKernel kernel;
  EXPECT_THROW(kernel.balance(s, 0, 1), std::invalid_argument);
}

TEST(DlbKc, ReducesToDlb2cBehaviourOnTwoClusters) {
  // Same engine, same seed: the generalised kernel must produce the same
  // trajectory as Dlb2cKernel on a two-cluster instance (the cross-cluster
  // path is identical; same-cluster Basic Greedy vs Greedy Load Balancing
  // may differ in job identities but not in the final loads' quality).
  const Instance inst = gen::two_cluster_uniform(4, 2, 60, 1.0, 100.0, 9);
  EngineOptions options;
  options.max_exchanges = 600;

  Schedule s2(inst, gen::random_assignment(inst, 10));
  stats::Rng rng2(11);
  const RunResult r2 = run_dlb2c(s2, options, rng2);

  Schedule sk(inst, gen::random_assignment(inst, 10));
  stats::Rng rngk(11);
  const RunResult rk = run_dlbkc(sk, options, rngk);

  EXPECT_TRUE(is_complete_partition(sk));
  // Both end close to the fractional floor.
  const Cost lb = two_cluster_fractional_opt(inst);
  EXPECT_LE(r2.final_makespan, 2.0 * lb);
  EXPECT_LE(rk.final_makespan, 2.0 * lb);
}

TEST(DlbKc, HandlesOneCluster) {
  // Degenerates to pairwise greedy on identical machines.
  const Instance inst = gen::multi_cluster_uniform({6}, 60, 1.0, 50.0, 12);
  Schedule s(inst, Assignment::all_on(60, 0));
  EngineOptions options;
  options.max_exchanges = 600;
  stats::Rng rng(13);
  const RunResult result = run_dlbkc(s, options, rng);
  EXPECT_LT(result.final_makespan, result.initial_makespan / 2.0);
  EXPECT_TRUE(is_complete_partition(s));
}

class DlbKcSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DlbKcSweep, StaysNearTheLowerBoundForAnyK) {
  const std::size_t k = GetParam();
  std::vector<std::size_t> sizes(k, 8);
  const Instance inst =
      gen::multi_cluster_uniform(sizes, 64 * k, 1.0, 100.0, 100 + k);
  Schedule s(inst, gen::random_assignment(inst, 200 + k));
  EngineOptions options;
  options.max_exchanges = inst.num_machines() * 30;
  stats::Rng rng(300 + k);
  const RunResult result = run_dlbkc(s, options, rng);
  EXPECT_TRUE(is_complete_partition(s));
  // No formal guarantee for k > 2; empirically the equilibrium stays within
  // a factor ~2 of the weak combinatorial lower bound on these workloads.
  const Cost lb = std::max(max_min_cost_bound(inst), min_work_bound(inst));
  EXPECT_LE(result.best_makespan, 2.5 * lb) << "k=" << k;
  EXPECT_GE(result.final_makespan, lb - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Clusters, DlbKcSweep,
                         ::testing::Values(2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dlb::dist
