#include "cli/args.hpp"
#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "stats/json.hpp"

namespace dlb::cli {
namespace {

// ---- Args parser ----

TEST(Args, ParsesPositionalsAndOptions) {
  const Args args = Args::parse({"pos1", "--key", "value", "pos2", "--flag"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"pos1", "pos2"}));
  EXPECT_EQ(args.get("key", ""), "value");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_FALSE(args.has("missing"));
}

TEST(Args, TypedGettersAndDefaults) {
  const Args args = Args::parse({"--n", "42", "--x", "2.5", "--s", "7"});
  EXPECT_EQ(args.get_int("n", 0), 42);
  EXPECT_DOUBLE_EQ(args.get_double("x", 0.0), 2.5);
  EXPECT_EQ(args.get_seed("s", 0), 7u);
  EXPECT_EQ(args.get_int("absent", -1), -1);
  EXPECT_DOUBLE_EQ(args.get_double("absent", 1.5), 1.5);
}

TEST(Args, RejectsMalformedNumbers) {
  const Args args = Args::parse({"--n", "4x", "--neg", "-3"});
  EXPECT_THROW((void)args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_seed("neg", 0), std::invalid_argument);
}

TEST(Args, RequireThrowsWhenMissing) {
  const Args args = Args::parse({"--present", "x"});
  EXPECT_EQ(args.require("present"), "x");
  EXPECT_THROW((void)args.require("absent"), std::invalid_argument);
}

TEST(Args, TracksUnusedOptions) {
  const Args args = Args::parse({"--used", "1", "--typo", "2"});
  (void)args.get_int("used", 0);
  const auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused.front(), "typo");
}

// ---- command round trips ----

struct CommandResult {
  int code;
  std::string out;
  std::string err;
};

CommandResult run(const std::vector<std::string>& argv) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_command(argv, out, err);
  return {code, out.str(), err.str()};
}

std::string temp_path(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(Commands, HelpSucceeds) {
  const auto result = run({"help"});
  EXPECT_EQ(result.code, 0);
  EXPECT_NE(result.out.find("usage:"), std::string::npos);
}

TEST(Commands, UnknownCommandIsUsageError) {
  const auto result = run({"frobnicate"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown command"), std::string::npos);
}

TEST(Commands, UnknownOptionIsRejected) {
  const auto result = run({"markov", "--m", "4", "--oops", "1"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--oops"), std::string::npos);
}

TEST(Commands, GenInfoSolveBalancePipeline) {
  const std::string path = temp_path("cli_pipeline.inst");
  const auto gen = run({"gen", "--kind", "two-cluster", "--m1", "4", "--m2",
                        "2", "--jobs", "48", "--hi", "100", "--out", path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("6 machines"), std::string::npos);

  const auto info = run({"info", "--in", path});
  ASSERT_EQ(info.code, 0) << info.err;
  EXPECT_NE(info.out.find("jobs          : 48"), std::string::npos);
  EXPECT_NE(info.out.find("LB fractional"), std::string::npos);

  const auto solve = run({"solve", "--in", path, "--alg", "clb2c"});
  ASSERT_EQ(solve.code, 0) << solve.err;
  EXPECT_NE(solve.out.find("makespan"), std::string::npos);

  const std::string trace = temp_path("cli_trace.csv");
  const auto balance = run({"balance", "--in", path, "--alg", "dlb2c",
                            "--exchanges-per-machine", "5", "--trace", trace});
  ASSERT_EQ(balance.code, 0) << balance.err;
  EXPECT_NE(balance.out.find("final factor"), std::string::npos);
  EXPECT_NE(balance.out.find("trace written"), std::string::npos);

  std::ifstream trace_file(trace);
  std::string header;
  std::getline(trace_file, header);
  // Old 2-column format first, new columns appended (script compatibility).
  EXPECT_EQ(header, "exchange,makespan,changed,migrations");
  std::string first_row;
  std::getline(trace_file, first_row);
  EXPECT_EQ(first_row.rfind("1,", 0), 0u);
  EXPECT_EQ(std::count(first_row.begin(), first_row.end(), ','), 3);
}

std::string slurp(const std::string& path) {
  std::ifstream file(path);
  std::ostringstream text;
  text << file.rdbuf();
  return text.str();
}

TEST(Commands, BalanceWritesStructurallyValidObsJson) {
  const std::string path = temp_path("cli_obs.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "4", "--m2", "2",
                 "--jobs", "48", "--hi", "100", "--out", path})
                .code,
            0);
  const std::string trace_json = temp_path("cli_obs_trace.json");
  const std::string metrics_json = temp_path("cli_obs_metrics.json");
  const auto balance =
      run({"balance", "--in", path, "--exchanges-per-machine", "4",
           "--trace-json", trace_json, "--metrics-json", metrics_json});
  ASSERT_EQ(balance.code, 0) << balance.err;
  EXPECT_NE(balance.out.find("trace-json"), std::string::npos);
  EXPECT_NE(balance.out.find("metrics-json"), std::string::npos);

  // The Chrome trace must parse, carry the expected top-level shape, and
  // every exchange span must contribute a begin and an end event.
  const stats::Json trace_doc = stats::Json::parse(slurp(trace_json));
  ASSERT_TRUE(trace_doc.is_object());
  EXPECT_EQ(trace_doc.find("displayTimeUnit")->as_string(), "ms");
  const stats::Json* events = trace_doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->size(), 2 * 6 * 4u);  // m machines * 4 exchanges, B+E
  double previous_ts = 0.0;
  std::size_t begins = 0;
  std::size_t ends = 0;
  for (const stats::Json& event : events->as_array()) {
    const std::string& phase = event.find("ph")->as_string();
    if (phase == "B") ++begins;
    if (phase == "E") ++ends;
    const double ts = event.find("ts")->as_number();
    EXPECT_GE(ts, previous_ts);  // export sorts by timestamp
    previous_ts = ts;
  }
  EXPECT_EQ(begins, ends);

  const stats::Json metrics_doc = stats::Json::parse(slurp(metrics_json));
  ASSERT_TRUE(metrics_doc.is_object());
  const stats::Json* counters = metrics_doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_DOUBLE_EQ(counters->find("exchange.count")->as_number(), 24.0);
  EXPECT_NE(metrics_doc.find("gauges")->find("exchange.cmax"), nullptr);
}

TEST(Commands, SimulateRunsAsyncProtocolWithObsOutputs) {
  const std::string path = temp_path("cli_sim.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "4", "--m2", "2",
                 "--jobs", "48", "--hi", "100", "--out", path})
                .code,
            0);
  const std::string trace = temp_path("cli_sim_trace.csv");
  const std::string metrics_json = temp_path("cli_sim_metrics.json");
  const auto simulate = run({"simulate", "--in", path, "--duration", "10",
                             "--trace", trace, "--metrics-json",
                             metrics_json});
  ASSERT_EQ(simulate.code, 0) << simulate.err;
  EXPECT_NE(simulate.out.find("(async)"), std::string::npos);
  EXPECT_NE(simulate.out.find("sessions"), std::string::npos);

  std::ifstream trace_file(trace);
  std::string header;
  std::getline(trace_file, header);
  EXPECT_EQ(header, "time,makespan");

  const stats::Json metrics_doc = stats::Json::parse(slurp(metrics_json));
  const stats::Json* counters = metrics_doc.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("async.sessions.completed"), nullptr);
  EXPECT_NE(counters->find("net.messages"), nullptr);
  EXPECT_NE(counters->find("des.events"), nullptr);
}

TEST(Commands, SimulateRejectsUnknownAlgorithm) {
  const std::string path = temp_path("cli_sim_bad.inst");
  ASSERT_EQ(run({"gen", "--kind", "identical", "--m", "3", "--jobs", "12",
                 "--out", path})
                .code,
            0);
  const auto result = run({"simulate", "--in", path, "--alg", "nope"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown --alg"), std::string::npos);
}

TEST(Commands, BalanceRejectsUnknownCostModelListingValidKinds) {
  const std::string path = temp_path("cli_cm_bad.inst");
  ASSERT_EQ(run({"gen", "--kind", "identical", "--m", "3", "--jobs", "12",
                 "--out", path})
                .code,
            0);
  const auto result =
      run({"balance", "--in", path, "--cost-model", "gamma:2"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--cost-model"), std::string::npos);
  EXPECT_NE(result.err.find("unknown distribution 'gamma'"),
            std::string::npos);
  EXPECT_NE(result.err.find("det, normal, lognormal, pareto"),
            std::string::npos);
}

TEST(Commands, BalanceRejectsMalformedCostModelParameters) {
  const std::string path = temp_path("cli_cm_arity.inst");
  ASSERT_EQ(run({"gen", "--kind", "identical", "--m", "3", "--jobs", "12",
                 "--out", path})
                .code,
            0);
  const auto result =
      run({"balance", "--in", path, "--cost-model", "pareto:2,1"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("--cost-model"), std::string::npos);
  EXPECT_NE(result.err.find("pareto expects 3 parameters alpha,lo,hi"),
            std::string::npos);
}

TEST(Commands, BalanceRejectsUnknownStochasticKernelListingTheValidSet) {
  const std::string path = temp_path("cli_cm_alg.inst");
  ASSERT_EQ(run({"gen", "--kind", "identical", "--m", "3", "--jobs", "12",
                 "--out", path})
                .code,
            0);
  const auto result = run({"balance", "--in", path, "--alg", "dlb2c_q99",
                           "--cost-model", "normal:0.3"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown --alg 'dlb2c_q99'"), std::string::npos);
  EXPECT_NE(result.err.find("dlb2c_q95"), std::string::npos);
  EXPECT_NE(result.err.find("dlb2c_effsize"), std::string::npos);
}

TEST(Commands, BalanceWithStochasticKernelReportsRiskFields) {
  const std::string path = temp_path("cli_cm_risk.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "4", "--m2", "2",
                 "--jobs", "48", "--hi", "100", "--out", path})
                .code,
            0);
  const std::string metrics = temp_path("cli_cm_risk_metrics.json");
  const auto result =
      run({"balance", "--in", path, "--alg", "dlb2c_q95", "--peer",
           "max-load_q95", "--cost-model", "lognormal:0.5",
           "--exchanges-per-machine", "5", "--metrics-json", metrics});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("final factor"), std::string::npos);
}

TEST(Commands, SolveEveryAlgorithmOnASmallInstance) {
  const std::string path = temp_path("cli_algs.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "2", "--m2", "1",
                 "--jobs", "8", "--hi", "20", "--out", path})
                .code,
            0);
  for (const char* alg : {"list", "lpt", "ect", "minmin", "maxmin",
                          "sufferage", "clb2c", "lenstra", "exact"}) {
    const auto result = run({"solve", "--in", path, "--alg", alg});
    EXPECT_EQ(result.code, 0) << alg << ": " << result.err;
  }
}

TEST(Commands, BalanceMjtbRequiresTypedInstance) {
  const std::string typed = temp_path("cli_typed.inst");
  ASSERT_EQ(run({"gen", "--kind", "typed", "--m", "4", "--jobs", "24",
                 "--types", "3", "--hi", "10", "--out", typed})
                .code,
            0);
  const auto ok = run({"balance", "--in", typed, "--alg", "mjtb",
                       "--exchanges-per-machine", "20"});
  EXPECT_EQ(ok.code, 0) << ok.err;

  const std::string untyped = temp_path("cli_untyped.inst");
  ASSERT_EQ(run({"gen", "--kind", "identical", "--m", "4", "--jobs", "8",
                 "--out", untyped})
                .code,
            0);
  const auto bad = run({"balance", "--in", untyped, "--alg", "mjtb"});
  EXPECT_EQ(bad.code, 2);  // surfaced as a usage error
}

TEST(Commands, MarkovEmitsCsvPdf) {
  const auto result = run({"markov", "--m", "4", "--pmax", "2"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("makespan,normalized,probability"),
            std::string::npos);
  EXPECT_NE(result.out.find("thm10_bound"), std::string::npos);
}

TEST(Commands, MissingInputFileFailsCleanly) {
  const auto result = run({"solve", "--in", "/nonexistent/x.inst"});
  EXPECT_EQ(result.code, 1);
  EXPECT_FALSE(result.err.empty());
}

TEST(Commands, GenMultiClusterAndDlbkcBalance) {
  const std::string path = temp_path("cli_multi.inst");
  const auto gen = run({"gen", "--kind", "multi", "--sizes", "3,2,2",
                        "--jobs", "42", "--hi", "50", "--out", path});
  ASSERT_EQ(gen.code, 0) << gen.err;
  EXPECT_NE(gen.out.find("7 machines (3 groups)"), std::string::npos);
  const auto balance = run({"balance", "--in", path, "--alg", "dlbkc",
                            "--exchanges-per-machine", "10"});
  EXPECT_EQ(balance.code, 0) << balance.err;
}

TEST(Commands, GenMultiRejectsMalformedSizes) {
  const auto result = run({"gen", "--kind", "multi", "--sizes", "3,x",
                           "--out", temp_path("bad.inst")});
  EXPECT_EQ(result.code, 2);
  const auto zero = run({"gen", "--kind", "multi", "--sizes", "0,2",
                         "--out", temp_path("bad2.inst")});
  EXPECT_EQ(zero.code, 2);
}

TEST(Commands, GenRejectsUnknownKind) {
  const auto result =
      run({"gen", "--kind", "quantum", "--out", temp_path("x.inst")});
  EXPECT_EQ(result.code, 2);
}

// ---- serve (open-system workload) ----

TEST(Commands, ServeRunsOpenSystemAndWritesTrace) {
  const std::string path = temp_path("cli_serve.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "3", "--m2", "2",
                 "--jobs", "40", "--hi", "60", "--out", path})
                .code,
            0);
  const std::string trace = temp_path("cli_serve_trace.csv");
  const auto serve =
      run({"serve", "--in", path, "--arrivals", "poisson:0.05",
           "--placement", "two_choices:2", "--repair-every", "25",
           "--repair-budget", "8", "--seed", "9", "--trace", trace});
  ASSERT_EQ(serve.code, 0) << serve.err;
  EXPECT_NE(serve.out.find("open system"), std::string::npos);
  EXPECT_NE(serve.out.find("placement       : two_choices:2"),
            std::string::npos);
  EXPECT_NE(serve.out.find("arrivals        : poisson"), std::string::npos);
  EXPECT_NE(serve.out.find("submitted"), std::string::npos);
  std::ifstream csv(trace);
  ASSERT_TRUE(csv.good());
  std::string header;
  std::getline(csv, header);
  EXPECT_EQ(header, "burst,makespan");
}

TEST(Commands, ServeIsByteIdenticalAcrossRepairThreadCounts) {
  const std::string path = temp_path("cli_serve_par.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "4", "--m2", "2",
                 "--jobs", "48", "--hi", "80", "--out", path})
                .code,
            0);
  std::vector<std::string> base = {
      "serve",          "--in",   path, "--arrivals", "bursty:0.1,0.01,50,25",
      "--repair-every", "20",     "--repair-budget", "6",
      "--repair-engine", "parallel", "--seed", "3"};
  const auto one = run([&] {
    auto argv = base;
    argv.insert(argv.end(), {"--threads", "1"});
    return argv;
  }());
  const auto eight = run([&] {
    auto argv = base;
    argv.insert(argv.end(), {"--threads", "8"});
    return argv;
  }());
  ASSERT_EQ(one.code, 0) << one.err;
  ASSERT_EQ(eight.code, 0) << eight.err;
  // The thread count is echoed in the header line; everything below it —
  // the whole report — must match byte for byte.
  const auto body = [](const std::string& text) {
    return text.substr(text.find('\n') + 1);
  };
  EXPECT_EQ(body(one.out), body(eight.out));
}

TEST(Commands, ServeHaltResumeMatchesUninterrupted) {
  const std::string path = temp_path("cli_serve_halt.inst");
  ASSERT_EQ(run({"gen", "--kind", "two-cluster", "--m1", "3", "--m2", "2",
                 "--jobs", "30", "--hi", "40", "--out", path})
                .code,
            0);
  const std::vector<std::string> common = {
      "serve", "--in", path, "--arrivals", "poisson:0.08",
      "--repair-every", "30", "--repair-budget", "4", "--seed", "17"};
  const auto full = run(common);
  ASSERT_EQ(full.code, 0) << full.err;

  const std::string checkpoint = temp_path("cli_serve.ckpt");
  auto halt_argv = common;
  halt_argv.insert(halt_argv.end(), {"--halt-after-events", "11",
                                     "--checkpoint", checkpoint});
  const auto halted = run(halt_argv);
  ASSERT_EQ(halted.code, 0) << halted.err;
  EXPECT_NE(halted.out.find("checkpoint      : " + checkpoint),
            std::string::npos);

  auto resume_argv = common;
  resume_argv.insert(resume_argv.end(), {"--resume", checkpoint});
  const auto resumed = run(resume_argv);
  ASSERT_EQ(resumed.code, 0) << resumed.err;
  // The resumed run's report block equals the uninterrupted run's; only
  // the "resumed from" line is extra.
  const auto report_of = [](const std::string& text) {
    return text.substr(text.find("initial"));
  };
  EXPECT_EQ(report_of(resumed.out), report_of(full.out));
}

TEST(Commands, ServeRejectsBadArrivalSpecs) {
  const std::string path = temp_path("cli_serve_bad.inst");
  ASSERT_EQ(run({"gen", "--kind", "identical", "--m", "3", "--jobs", "12",
                 "--out", path})
                .code,
            0);
  const auto bad_number =
      run({"serve", "--in", path, "--arrivals", "poisson:fast"});
  EXPECT_EQ(bad_number.code, 2);
  EXPECT_NE(bad_number.err.find("bad number 'fast'"), std::string::npos);
  const auto bad_arity =
      run({"serve", "--in", path, "--arrivals", "bursty:1,2"});
  EXPECT_EQ(bad_arity.code, 2);
  const auto bad_rate =
      run({"serve", "--in", path, "--arrivals", "poisson:0"});
  EXPECT_EQ(bad_rate.code, 2);
  EXPECT_NE(bad_rate.err.find("ArrivalPlan: invalid rate"),
            std::string::npos);
  const auto bad_placement = run({"serve", "--in", path, "--arrivals",
                                  "poisson:0.1", "--placement", "best_fit"});
  EXPECT_EQ(bad_placement.code, 2);
}

}  // namespace
}  // namespace dlb::cli
