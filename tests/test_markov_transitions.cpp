#include "markov/transitions.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace dlb::markov {
namespace {

TEST(Transitions, RowsAreStochastic) {
  const StateSpace space = StateSpace::enumerate(4, 12);
  for (StateIndex s = 0; s < space.size(); ++s) {
    const auto row = transitions_from(space, s, /*p_max=*/3);
    double total = 0.0;
    for (const auto& [target, p] : row) {
      EXPECT_GT(p, 0.0);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(Transitions, HandCheckedTwoMachines) {
  // m=2, total=2, p_max=2. From (2,0): T=2, feasible d in {0,2}: half the
  // mass re-balances to (1,1), half stays (2,0).
  const StateSpace space = StateSpace::enumerate(2, 2);
  const StateIndex top = space.index_of({2, 0});
  const StateIndex flat = space.index_of({1, 1});
  const auto row = transitions_from(space, top, 2);
  ASSERT_EQ(row.size(), 2u);
  for (const auto& [target, p] : row) {
    EXPECT_NEAR(p, 0.5, 1e-12);
    EXPECT_TRUE(target == top || target == flat);
  }
}

TEST(Transitions, ParityKeepsLoadsIntegral) {
  // Odd pair total: d must be odd -> (3,0) with p_max=2 can only reach
  // imbalance 1, i.e. (2,1).
  const StateSpace space = StateSpace::enumerate(2, 3);
  const auto row = transitions_from(space, space.index_of({3, 0}), 2);
  ASSERT_EQ(row.size(), 1u);
  EXPECT_EQ(row[0].first, space.index_of({2, 1}));
  EXPECT_NEAR(row[0].second, 1.0, 1e-12);
}

TEST(Transitions, ImbalanceNeverExceedsPmaxOnTouchedPair) {
  const StateSpace space = StateSpace::enumerate(3, 9);
  const Load p_max = 2;
  for (StateIndex s = 0; s < space.size(); ++s) {
    const auto& from = space.loads(s);
    for (const auto& [target, p] : transitions_from(space, s, p_max)) {
      (void)p;
      const auto& to = space.loads(target);
      // Find the touched pair: multiset difference of at most two entries.
      std::vector<Load> changed_from;
      std::vector<Load> changed_to;
      std::vector<Load> rem_to = to;
      for (const Load l : from) {
        auto it = std::find(rem_to.begin(), rem_to.end(), l);
        if (it != rem_to.end()) {
          rem_to.erase(it);
        } else {
          changed_from.push_back(l);
        }
      }
      // rem_to now holds the new values not matched to old ones.
      ASSERT_LE(rem_to.size(), 2u);
      if (rem_to.size() == 2) {
        EXPECT_LE(std::abs(rem_to[0] - rem_to[1]), p_max);
      }
    }
  }
}

TEST(Transitions, PairTotalConserved) {
  const StateSpace space = StateSpace::enumerate(5, 15);
  for (StateIndex s = 0; s < space.size(); s += 7) {
    for (const auto& [target, p] : transitions_from(space, s, 4)) {
      (void)p;
      // Total load is invariant (already enforced by the state space, but
      // check the target really is in the same space).
      EXPECT_LT(target, space.size());
    }
  }
}

TEST(TransitionMatrix, CsrMatchesRowGenerator) {
  const StateSpace space = StateSpace::enumerate(4, 10);
  const Load p_max = 3;
  const TransitionMatrix matrix = TransitionMatrix::build(space, p_max);
  ASSERT_EQ(matrix.num_states(), space.size());
  for (StateIndex s = 0; s < space.size(); ++s) {
    auto row = transitions_from(space, s, p_max);
    std::sort(row.begin(), row.end());
    const std::size_t begin = matrix.row_begin[s];
    const std::size_t end = matrix.row_begin[s + 1];
    ASSERT_EQ(end - begin, row.size());
    for (std::size_t k = 0; k < row.size(); ++k) {
      EXPECT_EQ(matrix.col[begin + k], row[k].first);
      EXPECT_NEAR(matrix.prob[begin + k], row[k].second, 1e-15);
    }
  }
}

TEST(TransitionMatrix, BalancedStateIsReachableFromEverywhere) {
  // Weak form of Theorem 9 checked structurally: from any state a path of
  // max->min rebalancings reaches the balanced state; here we just verify
  // every state has at least one outgoing transition that does not increase
  // the makespan.
  const StateSpace space = StateSpace::enumerate(3, 6);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  for (StateIndex s = 0; s < space.size(); ++s) {
    bool non_increasing = false;
    for (std::size_t e = matrix.row_begin[s]; e < matrix.row_begin[s + 1];
         ++e) {
      non_increasing |= space.makespan(matrix.col[e]) <= space.makespan(s);
    }
    EXPECT_TRUE(non_increasing) << "state " << s;
  }
}

TEST(Transitions, RejectsBadPmax) {
  const StateSpace space = StateSpace::enumerate(2, 2);
  EXPECT_THROW(transitions_from(space, 0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace dlb::markov
