#include "centralized/clb2c.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"

namespace dlb::centralized {
namespace {

TEST(Clb2c, RejectsWrongShapes) {
  EXPECT_THROW(clb2c_schedule(Instance::identical(3, {1.0})),
               std::invalid_argument);
  EXPECT_THROW(
      clb2c_schedule(gen::uniform_unrelated(3, 4, 1.0, 2.0, 1)),
      std::invalid_argument);
}

TEST(Clb2c, PerfectSplitWhenJobsAreSpecialised) {
  // Two jobs love cluster 1, two love cluster 2.
  const Instance inst = Instance::clustered(
      {1, 1}, {{1.0, 1.0, 10.0, 10.0}, {10.0, 10.0, 1.0, 1.0}});
  const Schedule s = clb2c_schedule(inst);
  EXPECT_TRUE(is_complete_partition(s));
  EXPECT_DOUBLE_EQ(s.makespan(), 2.0);
}

TEST(Clb2c, BalancesWithinClusters) {
  // Four equal jobs, 2+2 machines, equal costs: one job per machine.
  const Instance inst = Instance::clustered(
      {2, 2}, {{4.0, 4.0, 4.0, 4.0}, {4.0, 4.0, 4.0, 4.0}});
  const Schedule s = clb2c_schedule(inst);
  EXPECT_DOUBLE_EQ(s.makespan(), 4.0);
  for (MachineId i = 0; i < 4; ++i) {
    EXPECT_EQ(s.jobs_on(i).size(), 1u);
  }
}

TEST(Clb2c, UnsortedAblationStillProducesValidPartitions) {
  const Instance inst = gen::two_cluster_uniform(3, 2, 24, 1.0, 50.0, 11);
  const Schedule s = clb2c_schedule(inst, Clb2cOrdering::kJobIdOrder);
  EXPECT_TRUE(is_complete_partition(s));
  // Never better than what the ratio order achieves on specialised jobs.
  const Instance special = Instance::clustered(
      {1, 1}, {{1.0, 1.0, 50.0, 50.0}, {50.0, 50.0, 1.0, 1.0}});
  const Schedule sorted_s = clb2c_schedule(special);
  const Schedule unsorted_s =
      clb2c_schedule(special, Clb2cOrdering::kJobIdOrder);
  EXPECT_LE(sorted_s.makespan(), unsorted_s.makespan() + 1e-9);
}

TEST(Clb2c, SingleJobGoesToItsBetterCluster) {
  const Instance inst = Instance::clustered({1, 1}, {{7.0}, {3.0}});
  const Schedule s = clb2c_schedule(inst);
  EXPECT_EQ(inst.group_of(s.machine_of(0)), 1u);
}

struct Clb2cParam {
  std::size_t m1, m2, jobs;
  std::uint64_t seed;
};

class Clb2cTheorem6Sweep : public ::testing::TestWithParam<Clb2cParam> {};

TEST_P(Clb2cTheorem6Sweep, TwoApproximationAgainstExactOpt) {
  const auto p = GetParam();
  const Instance inst =
      gen::two_cluster_uniform(p.m1, p.m2, p.jobs, 1.0, 20.0, p.seed);
  const auto exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const Schedule s = clb2c_schedule(inst);
  EXPECT_TRUE(is_complete_partition(s));
  // Theorem 6 assumes max p(i,j) <= OPT; when the draw violates it, the
  // bound is still asserted against max(OPT, pmax) which Theorem 6's proof
  // actually delivers (min(C1,C2) <= OPT and the last job <= pmax).
  const Cost reference = std::max(exact.optimal, inst.max_cost());
  EXPECT_LE(s.makespan(), 2.0 * reference + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SmallInstances, Clb2cTheorem6Sweep,
    ::testing::Values(Clb2cParam{1, 1, 6, 1}, Clb2cParam{1, 1, 6, 2},
                      Clb2cParam{2, 1, 8, 3}, Clb2cParam{2, 2, 8, 4},
                      Clb2cParam{2, 2, 8, 5}, Clb2cParam{3, 2, 9, 6},
                      Clb2cParam{2, 3, 9, 7}, Clb2cParam{3, 3, 10, 8},
                      Clb2cParam{1, 3, 8, 9}, Clb2cParam{4, 2, 10, 10}));

TEST_P(Clb2cTheorem6Sweep, ProofInvariantMinClusterLoadBelowOpt) {
  // Theorem 6's key inequality at termination: the *minimum* machine load
  // in at least one cluster never exceeds OPT (min(C1, C2) <= OPT where
  // C1/C2 are the clusters' min loads just before the last placements;
  // after termination the min loads can only have grown by one job each,
  // so min over clusters of min-load minus its last job is a conservative
  // check; here we assert the direct final-state corollary).
  const auto p = GetParam();
  const Instance inst =
      gen::two_cluster_uniform(p.m1, p.m2, p.jobs, 1.0, 20.0, p.seed);
  const auto exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const Schedule s = clb2c_schedule(inst);
  Cost min1 = std::numeric_limits<Cost>::infinity();
  Cost min2 = std::numeric_limits<Cost>::infinity();
  for (MachineId i : inst.machines_in_group(0))
    min1 = std::min(min1, s.load(i));
  for (MachineId i : inst.machines_in_group(1))
    min2 = std::min(min2, s.load(i));
  const Cost reference = std::max(exact.optimal, inst.max_cost());
  // Each cluster's min load is at most (pre-placement min) + one job, and
  // the proof gives min(C1, C2) <= OPT; so min(min1, min2) <= OPT + pmax.
  EXPECT_LE(std::min(min1, min2), reference + inst.max_cost() + 1e-9);
}

class Clb2cLargeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Clb2cLargeSweep, TwoApproxAgainstLowerBoundAtPaperScale) {
  // Paper-scale: many jobs, p(i,j) <= OPT holds by construction
  // (768 jobs of cost <= 1000 over 96 machines -> OPT >> 1000).
  const Instance inst =
      gen::two_cluster_uniform(64, 32, 768, 1.0, 1000.0, GetParam());
  ASSERT_LE(inst.max_cost(), makespan_lower_bound(inst));
  const Schedule s = clb2c_schedule(inst);
  EXPECT_LE(s.makespan(), 2.0 * makespan_lower_bound(inst) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Clb2cLargeSweep,
                         ::testing::Range<std::uint64_t>(0, 5));

}  // namespace
}  // namespace dlb::centralized
