// Tests for the bench harness: registry lookup, the runner's repetition
// protocol, and the schema of the emitted JSON document. This binary links
// registry.cpp/runner.cpp without any experiment TU, so the global registry
// is empty and each test builds its own local Registry.

#include "registry.hpp"
#include "runner.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace {

using dlb::bench::Experiment;
using dlb::bench::ExperimentResult;
using dlb::bench::MetricSet;
using dlb::bench::Registry;
using dlb::bench::RunContext;
using dlb::bench::RunnerOptions;

Registry make_registry() {
  Registry registry;
  registry.add({"fig_alpha", "first",
                [](const RunContext& ctx, MetricSet& metrics) {
                  metrics.metric("quality", ctx.smoke ? 1.5 : 1.25);
                  metrics.counter("items", 100.0);
                }});
  registry.add({"fig_beta", "second",
                [](const RunContext&, MetricSet& metrics) {
                  metrics.metric("quality", 2.0);
                }});
  registry.add({"perf_gamma", "third",
                [](const RunContext&, MetricSet&) {
                  throw std::runtime_error("shape check failed");
                }});
  return registry;
}

TEST(BenchRegistry, SortedAndMatch) {
  const Registry registry = make_registry();
  EXPECT_EQ(registry.size(), 3u);

  const auto all = registry.sorted();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0]->name, "fig_alpha");
  EXPECT_EQ(all[1]->name, "fig_beta");
  EXPECT_EQ(all[2]->name, "perf_gamma");

  EXPECT_EQ(registry.match("").size(), 3u);
  EXPECT_EQ(registry.match("^fig_").size(), 2u);
  EXPECT_EQ(registry.match("beta|gamma").size(), 2u);
  EXPECT_EQ(registry.match("^nope$").size(), 0u);
}

TEST(BenchRegistry, DuplicateNameThrows) {
  Registry registry = make_registry();
  EXPECT_THROW(
      registry.add({"fig_alpha", "dup", [](const RunContext&, MetricSet&) {}}),
      std::logic_error);
}

TEST(BenchRegistry, MetricSetUpsertsInOrder) {
  MetricSet metrics;
  metrics.metric("b", 1.0);
  metrics.metric("a", 2.0);
  metrics.metric("b", 3.0);
  ASSERT_EQ(metrics.metrics().size(), 2u);
  EXPECT_EQ(metrics.metrics()[0].first, "b");
  EXPECT_EQ(metrics.metrics()[0].second, 3.0);
  EXPECT_EQ(metrics.metric_value("a"), 2.0);
  EXPECT_FALSE(metrics.metric_value("missing").has_value());
}

TEST(BenchRunner, RunsMatchingExperimentsInNameOrder) {
  const Registry registry = make_registry();
  RunnerOptions options;
  options.filter = "^fig_";
  options.reps = 2;
  options.warmup = 1;
  options.quiet = true;
  std::ostringstream log;
  const auto results =
      dlb::bench::run_experiments(registry, options, log);

  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].name, "fig_alpha");
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[0].metrics.metric_value("quality"), 1.25);
  EXPECT_EQ(results[0].timing.reps, 2u);
  EXPECT_EQ(results[1].name, "fig_beta");
  EXPECT_NE(log.str().find("fig_alpha"), std::string::npos);
}

TEST(BenchRunner, SmokeFlagReachesExperiments) {
  const Registry registry = make_registry();
  RunnerOptions options;
  options.filter = "^fig_alpha$";
  options.smoke = true;
  options.quiet = true;
  std::ostringstream log;
  const auto results =
      dlb::bench::run_experiments(registry, options, log);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].metrics.metric_value("quality"), 1.5);
}

TEST(BenchRunner, FailuresAreCapturedNotPropagated) {
  const Registry registry = make_registry();
  RunnerOptions options;
  options.filter = "perf_gamma";
  options.quiet = true;
  std::ostringstream log;
  const auto results =
      dlb::bench::run_experiments(registry, options, log);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
  EXPECT_EQ(results[0].error, "shape check failed");
  EXPECT_NE(log.str().find("FAILED"), std::string::npos);
}

TEST(BenchJson, SchemaRoundTrip) {
  const Registry registry = make_registry();
  RunnerOptions options;
  options.quiet = true;
  std::ostringstream log;
  const auto results =
      dlb::bench::run_experiments(registry, options, log);
  const dlb::stats::Json doc =
      dlb::bench::results_to_json(results, options);

  EXPECT_EQ(doc.find("schema")->as_string(), "dlb-bench");
  EXPECT_EQ(doc.find("schema_version")->as_number(),
            dlb::bench::kJsonSchemaVersion);
  ASSERT_NE(doc.find("environment"), nullptr);
  ASSERT_NE(doc.find("experiments"), nullptr);

  const auto& experiments = doc.find("experiments")->as_array();
  ASSERT_EQ(experiments.size(), 3u);
  EXPECT_EQ(experiments[0].find("name")->as_string(), "fig_alpha");
  EXPECT_EQ(experiments[0].find("status")->as_string(), "ok");
  EXPECT_EQ(
      experiments[0].find("metrics")->find("quality")->as_number(), 1.25);
  EXPECT_EQ(
      experiments[0].find("counters")->find("items")->as_number(), 100.0);
  ASSERT_NE(experiments[0].find("timing"), nullptr);
  EXPECT_EQ(experiments[2].find("status")->as_string(), "error");
  EXPECT_EQ(experiments[2].find("timing"), nullptr);

  // parse(dump(doc)) reproduces the document and its bytes.
  const std::string text = doc.dump(2);
  EXPECT_EQ(dlb::stats::Json::parse(text), doc);
  EXPECT_EQ(dlb::stats::Json::parse(text).dump(2), text);
}

TEST(BenchJson, NoTimingOutputIsThreadCountInvariant) {
  const Registry registry = make_registry();
  std::string dumps[2];
  const std::size_t thread_counts[] = {1, 8};
  for (int i = 0; i < 2; ++i) {
    RunnerOptions options;
    options.filter = "^fig_";
    options.quiet = true;
    options.with_timing = false;
    options.threads = thread_counts[i];
    std::ostringstream log;
    const auto results =
        dlb::bench::run_experiments(registry, options, log);
    RunnerOptions normalized = options;
    normalized.threads = 0;  // not emitted anyway without timing
    dumps[i] = dlb::bench::results_to_json(results, normalized).dump(2);
  }
  EXPECT_EQ(dumps[0], dumps[1]);
  EXPECT_EQ(dumps[0].find("\"timing\""), std::string::npos);
  EXPECT_EQ(dumps[0].find("\"environment\""), std::string::npos);
}

TEST(BenchMain, ListAndBadArgs) {
  // --list on the (empty) global registry: succeeds with no output rows.
  const char* list_argv[] = {"dlb_bench", "--list"};
  EXPECT_EQ(dlb::bench::bench_main(2, list_argv), 0);

  // Unknown flags are rejected, not silently ignored.
  const char* bad_argv[] = {"dlb_bench", "--bogus"};
  EXPECT_EQ(dlb::bench::bench_main(2, bad_argv), 2);

  // An empty match is an error (catches typo'd filters in CI).
  const char* nomatch_argv[] = {"dlb_bench", "--filter", "nothing"};
  EXPECT_EQ(dlb::bench::bench_main(3, nomatch_argv), 2);
}

}  // namespace
