#include "dist/churn.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/generators.hpp"
#include "dist/exchange_engine.hpp"
#include "dist/parallel_exchange_engine.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::dist {
namespace {

TEST(ChurnPlan, KindNamesRoundTrip) {
  for (const ChurnKind kind :
       {ChurnKind::kJoin, ChurnKind::kDrain, ChurnKind::kCrash}) {
    EXPECT_EQ(churn_kind_by_name(churn_kind_name(kind)), kind);
  }
  EXPECT_THROW((void)churn_kind_by_name("reboot"), std::invalid_argument);
}

TEST(ChurnPlan, ValidateNamesTheOffendingEvent) {
  ChurnPlan plan;
  plan.events = {{3, ChurnKind::kCrash, 1}, {2, ChurnKind::kCrash, 0}};
  try {
    plan.validate(4);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "ChurnPlan: invalid events[1].epoch: events must be ordered "
              "by epoch (saw 2 after 3)");
  }
}

TEST(ChurnPlan, ValidateRejectsOutOfRangeMachine) {
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kCrash, 9}};
  EXPECT_THROW(plan.validate(4), std::invalid_argument);
}

TEST(ChurnPlan, ValidateRejectsDepartureOfDeadMachine) {
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kCrash, 0}, {2, ChurnKind::kDrain, 0}};
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
}

TEST(ChurnPlan, ValidateRejectsJoinOfLiveMachine) {
  // A machine whose first event is a join starts dead, so the only way to
  // join a live machine is to join it twice.
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kJoin, 1}, {2, ChurnKind::kJoin, 1}};
  EXPECT_THROW(plan.validate(3), std::invalid_argument);
}

TEST(ChurnPlan, ValidateRejectsEmptyingTheLiveSet) {
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kCrash, 0}, {2, ChurnKind::kCrash, 1}};
  EXPECT_THROW(plan.validate(2), std::invalid_argument);
}

TEST(ChurnPlan, JoinThenDrainWithinOneEpochIsValid) {
  // Epoch 3 rejoins machine 0 and immediately drains machine 1: the join
  // earlier in the same batch is the drain's only legal migration target.
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kCrash, 0},
                 {3, ChurnKind::kJoin, 0},
                 {3, ChurnKind::kDrain, 1}};
  EXPECT_NO_THROW(plan.validate(2));
}

TEST(ChurnPlan, InitialLiveMarksPreJoinMachinesDead) {
  ChurnPlan plan;
  plan.events = {{2, ChurnKind::kJoin, 1}, {3, ChurnKind::kCrash, 0}};
  const std::vector<std::uint8_t> mask = plan.initial_live(3);
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{1, 0, 1}));
}

TEST(ChurnPlan, SaveLoadRoundTrips) {
  ChurnPlan plan;
  plan.seed = 77;
  plan.redispatch_per_epoch = 3;
  plan.events = {{1, ChurnKind::kCrash, 2},
                 {4, ChurnKind::kJoin, 2},
                 {5, ChurnKind::kDrain, 0}};
  std::stringstream bytes;
  plan.save(bytes);
  const ChurnPlan loaded = ChurnPlan::load(bytes);
  EXPECT_EQ(loaded.seed, plan.seed);
  EXPECT_EQ(loaded.redispatch_per_epoch, plan.redispatch_per_epoch);
  EXPECT_EQ(loaded.events, plan.events);
}

TEST(ChurnPlan, LoadRejectsBadHeader) {
  std::stringstream bytes("dlb-instance v1\n");
  EXPECT_THROW((void)ChurnPlan::load(bytes), std::runtime_error);
}

TEST(ChurnPlan, RandomPlansAlwaysValidate) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const ChurnPlan plan = ChurnPlan::random(5, 8, 0.4, 0.3, 0.4, seed);
    EXPECT_NO_THROW(plan.validate(5)) << "seed " << seed;
  }
}

TEST(ChurnRuntime, InactiveRuntimeListsAllMachinesLive) {
  const ChurnRuntime runtime(nullptr, 4);
  EXPECT_FALSE(runtime.active());
  EXPECT_EQ(runtime.live_machines(),
            (std::vector<MachineId>{0, 1, 2, 3}));
  for (MachineId i = 0; i < 4; ++i) {
    EXPECT_EQ(runtime.live_index(i), i);
  }
  EXPECT_TRUE(runtime.exhausted());
}

TEST(ChurnRuntime, ApplyInitialOrphansJobsOnPreJoinMachines) {
  const Instance inst = gen::identical_uniform(3, 9, 1.0, 2.0, 1);
  Schedule schedule(inst, Assignment::round_robin(9, 3));
  ChurnPlan plan;
  plan.events = {{2, ChurnKind::kJoin, 1}};
  ChurnRuntime runtime(&plan, 3);
  runtime.apply_initial(schedule, nullptr);
  EXPECT_FALSE(schedule.is_live(1));
  EXPECT_TRUE(schedule.jobs_on(1).empty());
  // Round-robin put jobs 1, 4, 7 on machine 1; all three are queued.
  EXPECT_EQ(runtime.pending(), (std::vector<JobId>{1, 4, 7}));
  EXPECT_EQ(runtime.counters().orphaned, 3u);
}

TEST(ChurnRuntime, CrashOrphansAndRedispatchBudgetIsHonoured) {
  const Instance inst = gen::identical_uniform(3, 9, 1.0, 2.0, 2);
  Schedule schedule(inst, Assignment::round_robin(9, 3));
  ChurnPlan plan;
  plan.seed = 11;
  plan.redispatch_per_epoch = 1;
  plan.events = {{1, ChurnKind::kCrash, 2}};
  ChurnRuntime runtime(&plan, 3);
  runtime.apply_initial(schedule, nullptr);

  // Epoch 1: machine 2 crashes; its residents are queued but not yet
  // eligible (they were orphaned by this epoch's own crash).
  EXPECT_TRUE(runtime.begin_epoch(1, schedule, nullptr, 0.0));
  EXPECT_FALSE(schedule.is_live(2));
  EXPECT_EQ(runtime.counters().crashes, 1u);
  EXPECT_EQ(runtime.counters().orphaned, 3u);
  EXPECT_EQ(runtime.counters().redispatched, 0u);
  EXPECT_EQ(runtime.pending().size(), 3u);

  // The budget of one drains the queue one job per epoch, FIFO.
  for (std::uint64_t epoch = 2; epoch <= 4; ++epoch) {
    runtime.begin_epoch(epoch, schedule, nullptr, 0.0);
    EXPECT_EQ(runtime.pending().size(), 4 - epoch);
  }
  EXPECT_EQ(runtime.counters().redispatched, 3u);
  EXPECT_TRUE(runtime.exhausted());
  // Every job ended up assigned to one of the two survivors.
  for (JobId j = 0; j < 9; ++j) {
    const MachineId machine = schedule.machine_of(j);
    ASSERT_NE(machine, kUnassigned);
    EXPECT_TRUE(schedule.is_live(machine));
  }
}

TEST(ChurnRuntime, DrainMigratesResidentsWithoutOrphaning) {
  const Instance inst = gen::identical_uniform(3, 9, 1.0, 2.0, 3);
  Schedule schedule(inst, Assignment::round_robin(9, 3));
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kDrain, 0}};
  ChurnRuntime runtime(&plan, 3);
  runtime.apply_initial(schedule, nullptr);
  const std::uint64_t migrations_before = schedule.migrations();
  runtime.begin_epoch(1, schedule, nullptr, 0.0);
  EXPECT_FALSE(schedule.is_live(0));
  EXPECT_TRUE(schedule.jobs_on(0).empty());
  EXPECT_TRUE(runtime.pending().empty());
  EXPECT_EQ(runtime.counters().drains, 1u);
  EXPECT_EQ(runtime.counters().orphaned, 0u);
  // The three residents really moved (counted as network migrations).
  EXPECT_EQ(schedule.migrations() - migrations_before, 3u);
}

TEST(ChurnRuntime, DrainTargetsAMachineJoinedInTheSameEpoch) {
  // Regression: the drain target scan must see joins applied earlier in
  // the same epoch batch, not the previous epoch's stale live list.
  const Instance inst = gen::identical_uniform(2, 6, 1.0, 2.0, 5);
  Schedule schedule(inst, Assignment::all_on(6, 1));
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kCrash, 0},
                 {3, ChurnKind::kJoin, 0},
                 {3, ChurnKind::kDrain, 1}};
  ChurnRuntime runtime(&plan, 2);
  runtime.apply_initial(schedule, nullptr);
  runtime.begin_epoch(1, schedule, nullptr, 0.0);
  runtime.begin_epoch(2, schedule, nullptr, 0.0);
  runtime.begin_epoch(3, schedule, nullptr, 0.0);
  EXPECT_TRUE(schedule.is_live(0));
  EXPECT_FALSE(schedule.is_live(1));
  // All six jobs migrated from the drained machine onto the fresh join.
  EXPECT_EQ(schedule.jobs_on(0).size(), 6u);
  EXPECT_TRUE(schedule.check_consistency());
}

// ----- engine integration -----

RunResult run_seq(Schedule& schedule, const ChurnPlan* plan,
                  std::uint64_t seed, std::size_t max_exchanges) {
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  EngineOptions options;
  options.max_exchanges = max_exchanges;
  options.churn = plan;
  stats::Rng rng(seed);
  return ExchangeEngine(kernel, selector).run(schedule, options, rng);
}

TEST(ChurnEngine, TrivialPlanIsByteIdenticalToNoPlan) {
  const Instance inst = gen::identical_uniform(5, 30, 1.0, 10.0, 4);
  const ChurnPlan trivial_plan;  // no events

  Schedule bare(inst, gen::random_assignment(inst, 5));
  const RunResult without = run_seq(bare, nullptr, 6, 80);
  Schedule elastic(inst, gen::random_assignment(inst, 5));
  const RunResult with = run_seq(elastic, &trivial_plan, 6, 80);

  EXPECT_EQ(bare.fingerprint(), elastic.fingerprint());
  EXPECT_EQ(without.to_json().dump(), with.to_json().dump());
}

TEST(ChurnEngine, CrashNeverLosesOrDuplicatesAJob) {
  const Instance inst = gen::identical_uniform(4, 20, 1.0, 10.0, 7);
  ChurnPlan plan;
  plan.seed = 13;
  plan.events = {{2, ChurnKind::kCrash, 3}, {4, ChurnKind::kCrash, 0}};
  Schedule schedule(inst, gen::random_assignment(inst, 8));
  const RunResult result = run_seq(schedule, &plan, 9, 120);

  EXPECT_EQ(result.churn_crashes, 2u);
  EXPECT_EQ(result.churn_orphaned,
            result.churn_redispatched + result.churn_pending);
  std::size_t unassigned = 0;
  for (JobId j = 0; j < schedule.num_jobs(); ++j) {
    const MachineId machine = schedule.machine_of(j);
    if (machine == kUnassigned) {
      ++unassigned;
      continue;
    }
    EXPECT_TRUE(schedule.is_live(machine)) << "job " << j;
  }
  EXPECT_EQ(unassigned, result.churn_pending);
  EXPECT_TRUE(schedule.check_consistency());
}

TEST(ChurnEngine, JoinExtendsTheLiveSetMidRun) {
  const Instance inst = gen::identical_uniform(3, 18, 1.0, 10.0, 10);
  ChurnPlan plan;
  plan.events = {{3, ChurnKind::kJoin, 2}};
  Schedule schedule(inst, gen::random_assignment(inst, 11));
  const RunResult result = run_seq(schedule, &plan, 12, 90);
  EXPECT_EQ(result.churn_joins, 1u);
  // Machine 2 started dead (its first event is a join) and is live at the
  // end; the exchanges after epoch 3 can route work onto it.
  EXPECT_TRUE(schedule.is_live(2));
}

TEST(ChurnEngine, ParallelRunIsThreadCountInvariantUnderChurn) {
  const Instance inst = gen::identical_uniform(6, 36, 1.0, 10.0, 13);
  ChurnPlan plan;
  plan.seed = 21;
  plan.events = {{2, ChurnKind::kCrash, 5},
                 {3, ChurnKind::kDrain, 4},
                 {5, ChurnKind::kJoin, 5}};
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  const ParallelExchangeEngine engine(kernel, selector);

  ParallelEngineOptions options;
  options.max_exchanges = 120;
  options.churn = &plan;

  Schedule inline_run(inst, gen::random_assignment(inst, 14));
  const ParallelRunResult inline_result =
      engine.run(inline_run, options, 15);

  parallel::ThreadPool pool(8);
  options.pool = &pool;
  Schedule pooled_run(inst, gen::random_assignment(inst, 14));
  const ParallelRunResult pooled_result =
      engine.run(pooled_run, options, 15);

  EXPECT_EQ(inline_run.fingerprint(), pooled_run.fingerprint());
  EXPECT_EQ(inline_result.to_json().dump(), pooled_result.to_json().dump());
  EXPECT_EQ(inline_result.epochs, pooled_result.epochs);
  EXPECT_EQ(inline_result.conflicts, pooled_result.conflicts);
}

TEST(ChurnEngine, EngineValidatesThePlanUpFront) {
  const Instance inst = gen::identical_uniform(2, 8, 1.0, 2.0, 16);
  ChurnPlan plan;
  plan.events = {{1, ChurnKind::kCrash, 0}, {2, ChurnKind::kCrash, 1}};
  Schedule schedule(inst, gen::random_assignment(inst, 17));
  EXPECT_THROW((void)run_seq(schedule, &plan, 18, 10),
               std::invalid_argument);
}

}  // namespace
}  // namespace dlb::dist
