#include "markov/mixing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "markov/scc.hpp"
#include "markov/stationary.hpp"

namespace dlb::markov {
namespace {

/// Two-state symmetric chain with hold probability a: P = [[a, 1-a],
/// [1-a, a]]; lambda2 = 2a - 1.
TransitionMatrix two_state_chain(double a) {
  TransitionMatrix m;
  m.row_begin = {0, 2, 4};
  m.col = {0, 1, 0, 1};
  m.prob = {a, 1.0 - a, 1.0 - a, a};
  return m;
}

TEST(SpectralGap, TwoStateChainMatchesClosedForm) {
  const TransitionMatrix m = two_state_chain(0.7);
  const SpectralGapResult result = spectral_gap(m, {0, 1});
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.lambda2, 0.4, 1e-8);  // |2*0.7 - 1|
  EXPECT_NEAR(result.gap, 0.6, 1e-8);
  EXPECT_NEAR(result.relaxation_time(), 1.0 / 0.6, 1e-6);
}

TEST(SpectralGap, FasterChainHasLargerGap) {
  const SpectralGapResult slow = spectral_gap(two_state_chain(0.9), {0, 1});
  const SpectralGapResult fast = spectral_gap(two_state_chain(0.5), {0, 1});
  EXPECT_GT(fast.gap, slow.gap);
}

TEST(SpectralGap, RejectsTrivialSupport) {
  const TransitionMatrix m = two_state_chain(0.5);
  EXPECT_THROW((void)spectral_gap(m, {0}), std::invalid_argument);
}

TEST(HittingTime, TwoStateChainClosedForm) {
  // From state 0, hitting {1} takes Geometric(1-a) steps: mean 1/(1-a).
  const double a = 0.75;
  const TransitionMatrix m = two_state_chain(a);
  std::vector<char> target = {0, 1};
  const HittingTimeResult result = expected_hitting_time(m, {0, 1}, target);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.expected_steps[0], 1.0 / (1.0 - a), 1e-8);
  EXPECT_DOUBLE_EQ(result.expected_steps[1], 0.0);
}

TEST(HittingTime, ChainOfThreeStates) {
  // 0 -> 1 -> 2 deterministic; hitting {2}: h(1) = 1, h(0) = 2.
  TransitionMatrix m;
  m.row_begin = {0, 1, 2, 3};
  m.col = {1, 2, 2};
  m.prob = {1.0, 1.0, 1.0};
  std::vector<char> target = {0, 0, 1};
  const HittingTimeResult result =
      expected_hitting_time(m, {0, 1, 2}, target);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.expected_steps[0], 2.0, 1e-9);
  EXPECT_NEAR(result.expected_steps[1], 1.0, 1e-9);
}

TEST(HittingTime, RejectsEmptyTarget) {
  const TransitionMatrix m = two_state_chain(0.5);
  std::vector<char> target = {0, 0};
  EXPECT_THROW(expected_hitting_time(m, {0, 1}, target),
               std::invalid_argument);
}

TEST(TvDistanceCurve, DecaysMonotonicallyOnTheSinkChain) {
  const StateSpace space = StateSpace::enumerate(4, 12);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);
  const StationaryResult stationary = stationary_distribution(matrix, sink);
  ASSERT_TRUE(stationary.converged);

  const auto curve =
      tv_distance_curve(matrix, stationary.pi, space.balanced_state(), 60);
  ASSERT_EQ(curve.size(), 60u);
  // TV distance to stationarity is non-increasing for any Markov chain.
  for (std::size_t t = 1; t < curve.size(); ++t) {
    EXPECT_LE(curve[t], curve[t - 1] + 1e-12) << "t=" << t;
  }
  EXPECT_LT(curve.back(), 0.01);  // essentially mixed after 60 exchanges
}

TEST(TvDistanceCurve, DecayRateMatchesSpectralGap) {
  const StateSpace space = StateSpace::enumerate(3, 6);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);
  const StationaryResult stationary = stationary_distribution(matrix, sink);
  const SpectralGapResult gap = spectral_gap(matrix, sink);
  const auto curve =
      tv_distance_curve(matrix, stationary.pi, sink.front(), 14);
  // Asymptotically TV(t+1)/TV(t) -> lambda2. Probe while TV is still well
  // above the double-precision floor (it decays like lambda2^t).
  ASSERT_GT(curve[12], 1e-9);
  const double ratio = curve[13] / curve[12];
  EXPECT_NEAR(ratio, gap.lambda2, 0.05);
}

TEST(TvDistanceCurve, RejectsSizeMismatch) {
  const StateSpace space = StateSpace::enumerate(2, 2);
  const TransitionMatrix matrix = TransitionMatrix::build(space, 2);
  EXPECT_THROW(tv_distance_curve(matrix, std::vector<double>(99), 0, 5),
               std::invalid_argument);
}

TEST(ConvergenceAnalysis, GapPositiveAndHittingFinite) {
  // threshold_factor 0.25 keeps part of the sink outside the target for
  // every m here (with 1.0 and m = 3 the whole sink already qualifies and
  // the worst hitting time is legitimately zero).
  for (int machines : {3, 4, 5}) {
    const ConvergenceAnalysis analysis =
        analyze_convergence(machines, 4, /*threshold_factor=*/0.25);
    EXPECT_GT(analysis.gap, 0.0) << "m=" << machines;
    EXPECT_GT(analysis.target_size, 0u);
    EXPECT_GT(analysis.worst_hitting_steps, 0.0) << "m=" << machines;
    EXPECT_TRUE(std::isfinite(analysis.worst_hitting_steps));
  }
}

TEST(ConvergenceAnalysis, HittingTimeScalesLinearlyishInMachines) {
  // Figure 5's observation normalized per machine: exchanges-to-threshold
  // per machine is a small constant. The Markov counterpart: worst expected
  // hitting steps divided by m stays within a small band as m grows.
  double per_machine_prev = 0.0;
  for (int machines : {3, 4, 5, 6}) {
    const ConvergenceAnalysis analysis =
        analyze_convergence(machines, 4, 1.0);
    const double per_machine = analysis.worst_hitting_steps / machines;
    EXPECT_LT(per_machine, 10.0) << "m=" << machines;
    if (per_machine_prev > 0.0) {
      EXPECT_LT(per_machine, per_machine_prev * 3.0) << "m=" << machines;
    }
    per_machine_prev = per_machine;
  }
}

TEST(ConvergenceAnalysis, LooserThresholdIsHitSooner) {
  const ConvergenceAnalysis tight = analyze_convergence(5, 4, 0.5);
  const ConvergenceAnalysis loose = analyze_convergence(5, 4, 1.5);
  EXPECT_GE(loose.target_size, tight.target_size);
  EXPECT_LE(loose.worst_hitting_steps, tight.worst_hitting_steps);
}

}  // namespace
}  // namespace dlb::markov
