#include "markov/state_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace dlb::markov {
namespace {

TEST(StateSpace, EnumeratesPartitionsOfSmallTotals) {
  // Partitions of 4 into at most 2 parts: (4,0), (3,1), (2,2).
  const StateSpace space = StateSpace::enumerate(2, 4);
  EXPECT_EQ(space.size(), 3u);
}

TEST(StateSpace, ThreeMachinesTotalFour) {
  // Partitions of 4 into <= 3 parts: 400, 310, 220, 211 -> 4 states.
  const StateSpace space = StateSpace::enumerate(3, 4);
  EXPECT_EQ(space.size(), 4u);
}

TEST(StateSpace, StatesAreCanonicalAndSumCorrectly) {
  const StateSpace space = StateSpace::enumerate(4, 10);
  for (StateIndex s = 0; s < space.size(); ++s) {
    const auto& loads = space.loads(s);
    ASSERT_EQ(loads.size(), 4u);
    EXPECT_TRUE(std::is_sorted(loads.begin(), loads.end(),
                               std::greater<>()));
    EXPECT_EQ(std::accumulate(loads.begin(), loads.end(), 0), 10);
    for (Load l : loads) EXPECT_GE(l, 0);
  }
}

TEST(StateSpace, NoDuplicateStates) {
  const StateSpace space = StateSpace::enumerate(5, 12);
  for (StateIndex s = 0; s < space.size(); ++s) {
    EXPECT_EQ(space.index_of(space.loads(s)), s);
  }
}

TEST(StateSpace, MakespanIsFirstComponent) {
  const StateSpace space = StateSpace::enumerate(3, 6);
  for (StateIndex s = 0; s < space.size(); ++s) {
    EXPECT_EQ(space.makespan(s), space.loads(s)[0]);
  }
}

TEST(StateSpace, BalancedStateExists) {
  const StateSpace even = StateSpace::enumerate(3, 6);
  EXPECT_EQ(even.loads(even.balanced_state()),
            (std::vector<Load>{2, 2, 2}));
  const StateSpace odd = StateSpace::enumerate(3, 7);
  EXPECT_EQ(odd.loads(odd.balanced_state()),
            (std::vector<Load>{3, 2, 2}));
}

TEST(StateSpace, IndexOfUnknownThrows) {
  const StateSpace space = StateSpace::enumerate(2, 4);
  EXPECT_THROW((void)space.index_of({5, 0}), std::out_of_range);
}

TEST(StateSpace, RejectsOutOfContractShapes) {
  EXPECT_THROW(StateSpace::enumerate(1, 4), std::invalid_argument);
  EXPECT_THROW(StateSpace::enumerate(9, 4), std::invalid_argument);
  EXPECT_THROW(StateSpace::enumerate(3, -1), std::invalid_argument);
  EXPECT_THROW(StateSpace::enumerate(3, 70'000), std::invalid_argument);
}

TEST(StateSpace, KeysDistinguishPermutedLoads) {
  const auto k1 = StateSpace::key_of({3, 1});
  const auto k2 = StateSpace::key_of({1, 3});
  EXPECT_NE(k1, k2);  // keys are positional; canonical form is required
}

/// Closed-form count: partitions of n into at most k parts, via the
/// standard recurrence p(n, k) = p(n-k, k) + p(n, k-1).
std::size_t partition_count(int n, int k) {
  std::vector<std::vector<std::size_t>> p(
      n + 1, std::vector<std::size_t>(k + 1, 0));
  for (int kk = 0; kk <= k; ++kk) p[0][kk] = 1;
  for (int nn = 1; nn <= n; ++nn) {
    for (int kk = 1; kk <= k; ++kk) {
      p[nn][kk] = p[nn][kk - 1] + (nn >= kk ? p[nn - kk][kk] : 0);
    }
  }
  return p[n][k];
}

struct SpaceParam {
  int m;
  Load total;
};

class StateSpaceCountSweep : public ::testing::TestWithParam<SpaceParam> {};

TEST_P(StateSpaceCountSweep, SizeMatchesPartitionFunction) {
  const auto p = GetParam();
  const StateSpace space = StateSpace::enumerate(p.m, p.total);
  EXPECT_EQ(space.size(), partition_count(p.total, p.m));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StateSpaceCountSweep,
    ::testing::Values(SpaceParam{2, 10}, SpaceParam{3, 12}, SpaceParam{4, 24},
                      SpaceParam{5, 20}, SpaceParam{6, 30}, SpaceParam{6, 60},
                      SpaceParam{7, 21}, SpaceParam{8, 16}));

}  // namespace
}  // namespace dlb::markov
