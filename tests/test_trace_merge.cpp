// The cluster trace merger exercised two ways: hand-built event streams
// that poke each validation rule (orphan spans, orphan receives, clock
// alignment), and the satellite integration demanded by the PR — two real
// SocketTransports in one process, running the lockstep protocol under a
// reordering / duplicating chaos proxy, whose per-runner tracer rings must
// merge into a single causally-consistent cluster trace: every RECV sits
// at or after its SEND, no span is unpaired, and each session's frames
// respect the protocol order under the Lamport clock.

#include "obs/trace_merge.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"
#include "dist/transport_runner.hpp"
#include "net/fault.hpp"
#include "net/socket_transport.hpp"
#include "obs/obs.hpp"
#include "stats/json.hpp"

namespace dlb::obs {
namespace {

// ---- hand-built streams: one rule each ----

TraceEvent instant(double ts_us, std::uint32_t tid, std::string name,
                   std::string category, TraceArgs args = {}) {
  TraceEvent event;
  event.ts_us = ts_us;
  event.tid = tid;
  event.phase = Phase::kInstant;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args = std::move(args);
  return event;
}

TraceEvent send_frame(double ts_us, std::uint32_t from, std::uint32_t to,
                      std::int64_t trace, std::int64_t lclock,
                      const std::string& type) {
  return instant(ts_us, from, "SEND " + type, "net.frame",
                 {{"trace", trace},
                  {"lclock", lclock},
                  {"token", std::int64_t{0}},
                  {"peer", static_cast<std::int64_t>(to)}});
}

TraceEvent recv_frame(double ts_us, std::uint32_t from, std::uint32_t to,
                      std::int64_t trace, std::int64_t lclock,
                      const std::string& type) {
  return instant(ts_us, to, "RECV " + type, "net.frame",
                 {{"trace", trace},
                  {"lclock", lclock},
                  {"token", std::int64_t{0}},
                  {"peer", static_cast<std::int64_t>(from)},
                  {"at", lclock}});
}

TEST(TraceMerge, EmptyInputYieldsEmptyOkReport) {
  const MergedTrace merged = merge_cluster_trace({});
  EXPECT_TRUE(merged.report.ok());
  EXPECT_EQ(merged.report.processes, 0u);
  EXPECT_EQ(merged.report.sessions, 0u);
}

TEST(TraceMerge, DetectsOrphanSpan) {
  ProcessTrace proc;
  proc.pid = 0;
  proc.name = "dlbd[0]";
  TraceEvent begin = instant(1.0, 0, "session", "dist.session");
  begin.phase = Phase::kBegin;
  proc.events.push_back(begin);  // B with no E
  const MergedTrace merged = merge_cluster_trace({proc});
  EXPECT_EQ(merged.report.orphan_spans, 1u);
  EXPECT_FALSE(merged.report.ok());
}

TEST(TraceMerge, DetectsOrphanReceive) {
  ProcessTrace proc;
  proc.pid = 0;
  proc.name = "dlbd[0]";
  proc.events.push_back(recv_frame(5.0, 1, 0, 0x42, 7, "REQUEST"));
  const MergedTrace merged = merge_cluster_trace({proc});
  EXPECT_EQ(merged.report.orphan_receives, 1u);
  EXPECT_FALSE(merged.report.ok());
}

TEST(TraceMerge, AlignsSkewedClocksUntilRecvFollowsSend) {
  // Process 1's clock starts far behind: its RECV timestamp (2 us) sits
  // long before process 0's SEND (1000 us). The READY anchors give a
  // first-order alignment and the causal relaxation must finish the job.
  ProcessTrace a;
  a.pid = 0;
  a.name = "dlbd[0]";
  a.events.push_back(instant(0.0, 0, "READY", "dist.session"));
  a.events.push_back(send_frame(1000.0, 0, 1, 0x1, 1, "REQUEST"));
  ProcessTrace b;
  b.pid = 1;
  b.name = "dlbd[1]";
  b.events.push_back(instant(0.0, 1, "READY", "dist.session"));
  b.events.push_back(recv_frame(2.0, 0, 1, 0x1, 1, "REQUEST"));
  const MergedTrace merged = merge_cluster_trace({a, b});
  EXPECT_TRUE(merged.report.ok());
  EXPECT_EQ(merged.report.flow_links, 1u);

  double send_ts = -1.0;
  double recv_ts = -1.0;
  const stats::Json* events = merged.chrome.find("traceEvents");
  ASSERT_NE(events, nullptr);
  for (const stats::Json& event : events->as_array()) {
    const stats::Json* name = event.find("name");
    const stats::Json* ts = event.find("ts");
    if (name == nullptr || ts == nullptr) continue;
    if (name->as_string() == "SEND REQUEST") send_ts = ts->as_number();
    if (name->as_string() == "RECV REQUEST") recv_ts = ts->as_number();
  }
  ASSERT_GE(send_ts, 0.0);
  ASSERT_GE(recv_ts, 0.0);
  EXPECT_GE(recv_ts, send_ts);
}

TEST(TraceMerge, SenderDisambiguatesIdenticalStamps) {
  // Two different senders emit frames with the same trace id and Lamport
  // stamp (the finish-broadcast TOKEN_ACK shape). Each RECV must match
  // only its own sender's SEND — two flow links, no orphans, and no
  // false cross-wiring that would raise an unsatisfiable constraint.
  ProcessTrace a;
  a.pid = 0;
  a.name = "dlbd[0]";
  a.events.push_back(instant(0.0, 0, "READY", "dist.session"));
  a.events.push_back(send_frame(10.0, 0, 2, 0x9, 5, "TOKEN_ACK"));
  a.events.push_back(recv_frame(30.0, 1, 0, 0x9, 5, "TOKEN_ACK"));
  ProcessTrace b;
  b.pid = 1;
  b.name = "dlbd[1]";
  b.events.push_back(instant(0.0, 1, "READY", "dist.session"));
  b.events.push_back(send_frame(12.0, 1, 0, 0x9, 5, "TOKEN_ACK"));
  b.events.push_back(recv_frame(28.0, 0, 1, 0x9, 5, "TOKEN_ACK"));
  ProcessTrace c;
  c.pid = 2;
  c.name = "dlbd[2]";
  c.events.push_back(instant(0.0, 2, "READY", "dist.session"));
  c.events.push_back(recv_frame(25.0, 0, 2, 0x9, 5, "TOKEN_ACK"));
  const MergedTrace merged = merge_cluster_trace({a, b, c});
  EXPECT_TRUE(merged.report.ok()) << "orphan receives: "
                                  << merged.report.orphan_receives;
  EXPECT_EQ(merged.report.orphan_receives, 0u);
  EXPECT_EQ(merged.report.flow_links, 3u);
}

TEST(TraceMerge, FlagsProtocolOrderInversion) {
  // A TRANSFER carrying a smaller Lamport stamp than the session's
  // REQUEST is causally impossible and must be reported.
  ProcessTrace a;
  a.pid = 0;
  a.name = "dlbd[0]";
  a.events.push_back(send_frame(1.0, 0, 1, 0x7, 9, "REQUEST"));
  a.events.push_back(send_frame(2.0, 0, 1, 0x7, 3, "TRANSFER"));
  ProcessTrace b;
  b.pid = 1;
  b.name = "dlbd[1]";
  b.events.push_back(recv_frame(5.0, 0, 1, 0x7, 9, "REQUEST"));
  b.events.push_back(recv_frame(6.0, 0, 1, 0x7, 3, "TRANSFER"));
  const MergedTrace merged = merge_cluster_trace({a, b});
  EXPECT_FALSE(merged.report.ordering_violations.empty());
  EXPECT_FALSE(merged.report.ok());
}

TEST(TraceMerge, ChromeJsonRoundTripPreservesFrameEvents) {
  Tracer tracer;
  tracer.instant(1.0, 0, "READY", "dist.session", {});
  tracer.begin(2.0, 0, "session", "dist.session",
               {{"token", std::int64_t{0}}});
  tracer.instant(3.0, 0, "SEND REQUEST", "net.frame",
                 {{"trace", std::int64_t{0x42}},
                  {"lclock", std::int64_t{1}},
                  {"token", std::int64_t{0}},
                  {"peer", std::int64_t{1}}});
  tracer.end(4.0, 0, "session", {});
  const std::vector<TraceEvent> parsed =
      events_from_chrome_json(tracer.to_chrome_json());
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[2].name, "SEND REQUEST");
  EXPECT_EQ(parsed[2].category, "net.frame");
  EXPECT_EQ(parsed[0].phase, Phase::kInstant);
  EXPECT_EQ(parsed[1].phase, Phase::kBegin);
  EXPECT_EQ(parsed[3].phase, Phase::kEnd);
  // Integer args survive as doubles (JSON has one number type); the
  // merger reads them back through arg lookup, so just check presence.
  bool saw_trace = false;
  for (const TraceArg& arg : parsed[2].args) {
    if (arg.key == "trace") saw_trace = true;
  }
  EXPECT_TRUE(saw_trace);
}

// ---- the satellite: two real socket transports under chaos ----

std::uint16_t free_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::vector<net::HostSpec> make_hosts(bool use_unix, const std::string& tag,
                                      std::size_t machines) {
  const MachineId split = static_cast<MachineId>(machines / 2);
  std::vector<net::HostSpec> hosts(2);
  if (use_unix) {
    const std::string dir = std::filesystem::temp_directory_path().string();
    const std::string unique = tag + "_" + std::to_string(::getpid());
    hosts[0].address = "unix:" + dir + "/dlb_tm_" + unique + "_a.sock";
    hosts[1].address = "unix:" + dir + "/dlb_tm_" + unique + "_b.sock";
  } else {
    hosts[0].address = "tcp:127.0.0.1:" + std::to_string(free_tcp_port());
    hosts[1].address = "tcp:127.0.0.1:" + std::to_string(free_tcp_port());
  }
  hosts[0].machine_lo = 0;
  hosts[0].machine_hi = split;
  hosts[1].machine_lo = split;
  hosts[1].machine_hi = static_cast<MachineId>(machines);
  return hosts;
}

/// Runs the lockstep protocol over two in-process SocketTransports with
/// per-runner tracers, merges the rings, and returns the merged trace.
MergedTrace traced_two_host_cluster(const std::string& tag,
                                    const net::FaultPlan* chaos) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const std::uint64_t seed = 13;

  const std::vector<net::HostSpec> hosts =
      make_hosts(/*use_unix=*/true, tag, instance.num_machines());
  net::SocketTransportOptions options_a;
  options_a.hosts = hosts;
  options_a.self = 0;
  options_a.chaos = chaos;
  net::SocketTransportOptions options_b = options_a;
  options_b.self = 1;
  net::SocketTransport transport_a(options_a);
  net::SocketTransport transport_b(options_b);

  Tracer tracer_a;
  Tracer tracer_b;
  Metrics metrics_a;
  Metrics metrics_b;
  Context context_a{&metrics_a, &tracer_a, nullptr};
  Context context_b{&metrics_b, &tracer_b, nullptr};

  Schedule replica_a(instance, gen::random_assignment(instance, seed));
  Schedule replica_b(instance, gen::random_assignment(instance, seed));
  const dist::Dlb2cKernel kernel;
  dist::TransportRunnerOptions runner_options;
  runner_options.kernel = &kernel;
  runner_options.seed = seed;
  runner_options.rounds = 3;
  runner_options.retry_timeout = 0.05;
  runner_options.obs = &context_a;
  dist::TransportRunner runner_a(replica_a, transport_a, runner_options);
  runner_options.obs = &context_b;
  dist::TransportRunner runner_b(replica_b, transport_b, runner_options);

  // Higher rank dials first (see test_socket_transport.cpp).
  transport_b.connect();
  transport_a.connect();
  runner_a.start();
  runner_b.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!(runner_a.done() && runner_b.done())) {
    EXPECT_LT(std::chrono::steady_clock::now(), deadline)
        << "cluster did not converge";
    if (std::chrono::steady_clock::now() >= deadline) break;
    transport_a.poll(0.005);
    transport_b.poll(0.005);
  }

  std::vector<ProcessTrace> processes(2);
  processes[0].pid = 0;
  processes[0].name = "dlbd[0]";
  processes[0].events = tracer_a.events();
  processes[1].pid = 1;
  processes[1].name = "dlbd[1]";
  processes[1].events = tracer_b.events();
  return merge_cluster_trace(processes);
}

void expect_causally_consistent(const MergedTrace& merged) {
  EXPECT_TRUE(merged.report.ok());
  EXPECT_EQ(merged.report.orphan_spans, 0u);
  EXPECT_EQ(merged.report.orphan_receives, 0u);
  EXPECT_TRUE(merged.report.ordering_violations.empty())
      << merged.report.ordering_violations.front();
  EXPECT_EQ(merged.report.processes, 2u);
  EXPECT_GT(merged.report.sessions, 0u);
  EXPECT_GT(merged.report.cross_host_sessions, 0u);
  EXPECT_GT(merged.report.flow_links, 0u);
}

TEST(TraceMerge, SocketClusterMergesCausally) {
  expect_causally_consistent(traced_two_host_cluster("clean", nullptr));
}

TEST(TraceMerge, SocketClusterMergesUnderReorder) {
  const net::FaultPlan plan = net::FaultPlan::reorders(0.3, 99);
  expect_causally_consistent(traced_two_host_cluster("reorder", &plan));
}

TEST(TraceMerge, SocketClusterMergesUnderDuplicates) {
  const net::FaultPlan plan = net::FaultPlan::duplicates(0.3, 99);
  expect_causally_consistent(traced_two_host_cluster("dup", &plan));
}

TEST(TraceMerge, SocketClusterMergesUnderChaos) {
  const net::FaultPlan plan = net::fault_plan_by_name("chaos", 0.2, 77);
  expect_causally_consistent(traced_two_host_cluster("chaos", &plan));
}

}  // namespace
}  // namespace dlb::obs
