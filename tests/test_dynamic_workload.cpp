#include "dist/dynamic_workload.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"

namespace dlb::dist {
namespace {

Instance pool_instance(std::uint64_t seed) {
  // Big job pool: 384 initially active + 50 epochs * 32 churn = 1984 jobs.
  return gen::two_cluster_uniform(8, 4, 2048, 1.0, 100.0, seed);
}

TEST(DynamicWorkload, RejectsUndersizedJobPool) {
  const Instance tiny = gen::two_cluster_uniform(2, 2, 10, 1.0, 10.0, 1);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  EXPECT_THROW(run_dynamic(tiny, kernel, options), std::invalid_argument);
}

TEST(DynamicWorkload, RejectsChurnAboveTheActiveSet) {
  // churn_per_epoch > initial_active used to drain the active set mid-
  // epoch and feed rng.below(0) — undefined behaviour. It must instead be
  // rejected up front with the single error shape naming the field.
  const Instance inst = pool_instance(3);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.initial_active = 16;
  options.churn_per_epoch = 17;
  options.epochs = 2;
  try {
    run_dynamic(inst, kernel, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "run_dynamic: invalid DynamicOptions.churn_per_epoch: "
                 "must be <= initial_active (16), got 17");
  }
}

TEST(DynamicWorkload, UndersizedPoolErrorNamesTheField) {
  const Instance tiny = gen::two_cluster_uniform(2, 2, 10, 1.0, 10.0, 1);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.initial_active = 8;
  options.churn_per_epoch = 4;
  options.epochs = 3;
  try {
    run_dynamic(tiny, kernel, options);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "run_dynamic: invalid DynamicOptions.initial_active: job "
                 "pool too small: initial_active + epochs * "
                 "churn_per_epoch = 20 exceeds the instance's 10 jobs");
  }
}

TEST(DynamicWorkload, ChurnEqualToActiveSetIsTheBoundaryAndRuns) {
  const Instance inst = pool_instance(5);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.initial_active = 8;
  options.churn_per_epoch = 8;  // Drains to empty, then refills.
  options.epochs = 4;
  options.exchanges_per_epoch = 8;
  const auto history = run_dynamic(inst, kernel, options);
  ASSERT_EQ(history.size(), 4u);
  for (const auto& stats : history) {
    EXPECT_EQ(stats.active_jobs, 8u);
  }
}

TEST(DynamicWorkload, ReportsOneEntryPerEpochWithStableActiveCount) {
  const Instance inst = pool_instance(2);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.epochs = 20;
  options.seed = 3;
  const auto history = run_dynamic(inst, kernel, options);
  ASSERT_EQ(history.size(), 20u);
  for (const auto& e : history) {
    EXPECT_EQ(e.active_jobs, options.initial_active);
    EXPECT_GT(e.lower_bound, 0.0);
    EXPECT_GE(e.makespan, e.lower_bound - 1e-9);
  }
}

TEST(DynamicWorkload, PeriodicBalancingKeepsTheRatioLow) {
  // Section IV's claim: run periodically and dynamicity is absorbed. After
  // a warm-up the per-epoch ratio to the fractional LB should stay small
  // even though 32 of ~384 jobs churn every epoch.
  const Instance inst = pool_instance(4);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.epochs = 40;
  options.seed = 5;
  const auto history = run_dynamic(inst, kernel, options);
  double worst_late_ratio = 0.0;
  for (std::size_t e = 10; e < history.size(); ++e) {
    worst_late_ratio = std::max(worst_late_ratio, history[e].ratio());
  }
  EXPECT_LE(worst_late_ratio, 2.0);
}

TEST(DynamicWorkload, NoBalancingBudgetDegrades) {
  const Instance inst = pool_instance(6);
  const Dlb2cKernel kernel;
  DynamicOptions balanced;
  balanced.epochs = 30;
  balanced.seed = 7;
  DynamicOptions frozen = balanced;
  frozen.exchanges_per_epoch = 0;

  const auto with = run_dynamic(inst, kernel, balanced);
  const auto without = run_dynamic(inst, kernel, frozen);
  // Compare steady-state tail averages.
  auto tail_mean = [](const std::vector<EpochStats>& h) {
    double total = 0.0;
    for (std::size_t e = h.size() / 2; e < h.size(); ++e) {
      total += h[e].ratio();
    }
    return total / static_cast<double>(h.size() - h.size() / 2);
  };
  EXPECT_LT(tail_mean(with), tail_mean(without));
}

TEST(DynamicWorkload, MigrationTrafficIsBoundedByExchangeReach) {
  // Each exchange can migrate at most the pooled jobs of its pair (about
  // 2 * active/m); the paper itself flags this data-movement cost and
  // points to decoupling balancing from data transfer [14]. We assert the
  // structural bound, not wishful smallness.
  const Instance inst = pool_instance(8);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.epochs = 30;
  options.seed = 9;
  const auto history = run_dynamic(inst, kernel, options);
  const double pool_bound =
      2.0 * static_cast<double>(options.initial_active) /
      static_cast<double>(inst.num_machines());
  for (const auto& e : history) {
    EXPECT_LE(static_cast<double>(e.migrations),
              static_cast<double>(options.exchanges_per_epoch) * pool_bound)
        << "epoch " << e.epoch;
  }
}

TEST(DynamicWorkload, DeterministicGivenSeed) {
  const Instance inst = pool_instance(10);
  const Dlb2cKernel kernel;
  DynamicOptions options;
  options.epochs = 10;
  options.seed = 11;
  const auto a = run_dynamic(inst, kernel, options);
  const auto b = run_dynamic(inst, kernel, options);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_DOUBLE_EQ(a[e].makespan, b[e].makespan);
    EXPECT_EQ(a[e].migrations, b[e].migrations);
  }
}

}  // namespace
}  // namespace dlb::dist
