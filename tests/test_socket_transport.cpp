// The socket backend exercised hermetically: two SocketTransports in one
// process speak real Unix-domain / TCP streams, run the lockstep
// protocol, and must converge to the bitwise-identical assignment the
// simulated backend produces — with and without the chaos proxy.
//
// Connect ordering makes this single-threaded: the higher-ranked host
// dials first (the listener's OS backlog accepts before the peer polls),
// then the lower-ranked host's connect() promotes the queued HELLO.

#include "net/socket_transport.hpp"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "des/engine.hpp"
#include "dist/dlb2c.hpp"
#include "dist/transport_runner.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "stats/rng.hpp"

namespace dlb::net {
namespace {

std::uint16_t free_tcp_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  return port;
}

std::vector<HostSpec> make_hosts(bool use_unix, const std::string& tag,
                                 std::size_t machines) {
  const MachineId split = static_cast<MachineId>(machines / 2);
  std::vector<HostSpec> hosts(2);
  if (use_unix) {
    const std::string dir =
        std::filesystem::temp_directory_path().string();
    const std::string unique = tag + "_" + std::to_string(::getpid());
    hosts[0].address = "unix:" + dir + "/dlb_test_" + unique + "_a.sock";
    hosts[1].address = "unix:" + dir + "/dlb_test_" + unique + "_b.sock";
  } else {
    hosts[0].address =
        "tcp:127.0.0.1:" + std::to_string(free_tcp_port());
    hosts[1].address =
        "tcp:127.0.0.1:" + std::to_string(free_tcp_port());
  }
  hosts[0].machine_lo = 0;
  hosts[0].machine_hi = split;
  hosts[1].machine_lo = split;
  hosts[1].machine_hi = static_cast<MachineId>(machines);
  return hosts;
}

struct SimBaseline {
  std::vector<std::vector<JobId>> jobs;
  std::vector<Cost> loads;
  std::uint64_t exchanges = 0;
  std::uint64_t migrations = 0;
};

SimBaseline sim_baseline(const Instance& instance, std::uint64_t seed,
                         std::size_t rounds) {
  Schedule replica(instance, gen::random_assignment(instance, seed));
  des::Engine engine;
  ConstantLatency latency(0.01);
  stats::Rng rng = stats::Rng::stream(seed, 0x7E57);
  Network network(engine, latency, rng);
  SimTransport transport(engine, network, instance.num_machines());
  const dist::Dlb2cKernel kernel;
  dist::TransportRunnerOptions options;
  options.kernel = &kernel;
  options.seed = seed;
  options.rounds = rounds;
  dist::TransportRunner runner(replica, transport, options);
  runner.start();
  runner.run_to_completion();
  SimBaseline baseline;
  for (MachineId m = 0; m < instance.num_machines(); ++m) {
    baseline.jobs.push_back(runner.sorted_jobs(m));
    baseline.loads.push_back(runner.canonical_load(m));
  }
  baseline.exchanges = runner.counters().exchanges;
  baseline.migrations = runner.counters().migrations;
  return baseline;
}

void run_two_host_cluster(const Instance& instance, std::uint64_t seed,
                          std::size_t rounds, bool use_unix,
                          const std::string& tag,
                          const FaultPlan* chaos) {
  const SimBaseline baseline = sim_baseline(instance, seed, rounds);

  const std::vector<HostSpec> hosts =
      make_hosts(use_unix, tag, instance.num_machines());
  SocketTransportOptions options_a;
  options_a.hosts = hosts;
  options_a.self = 0;
  options_a.chaos = chaos;
  SocketTransportOptions options_b = options_a;
  options_b.self = 1;

  SocketTransport transport_a(options_a);
  SocketTransport transport_b(options_b);

  Schedule replica_a(instance, gen::random_assignment(instance, seed));
  Schedule replica_b(instance, gen::random_assignment(instance, seed));
  const dist::Dlb2cKernel kernel;
  dist::TransportRunnerOptions runner_options;
  runner_options.kernel = &kernel;
  runner_options.seed = seed;
  runner_options.rounds = rounds;
  runner_options.retry_timeout = 0.05;
  dist::TransportRunner runner_a(replica_a, transport_a, runner_options);
  dist::TransportRunner runner_b(replica_b, transport_b, runner_options);

  // Higher rank dials first; the lower rank's connect() then drains the
  // backlog and promotes the HELLO — no second thread needed.
  transport_b.connect();
  transport_a.connect();
  runner_a.start();
  runner_b.start();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!(runner_a.done() && runner_b.done())) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "cluster did not converge";
    transport_a.poll(0.005);
    transport_b.poll(0.005);
  }

  // Authoritative rows, stitched across the two runners, must match the
  // simulated baseline bit for bit.
  std::uint64_t exchanges = 0;
  std::uint64_t migrations = 0;
  for (MachineId m = 0; m < instance.num_machines(); ++m) {
    dist::TransportRunner& owner =
        m < hosts[0].machine_hi ? runner_a : runner_b;
    EXPECT_EQ(owner.sorted_jobs(m), baseline.jobs[m]) << "machine " << m;
    EXPECT_EQ(owner.canonical_load(m), baseline.loads[m])
        << "machine " << m;
  }
  exchanges = runner_a.counters().exchanges + runner_b.counters().exchanges;
  migrations =
      runner_a.counters().migrations + runner_b.counters().migrations;
  EXPECT_EQ(exchanges, baseline.exchanges);
  EXPECT_EQ(migrations, baseline.migrations);
}

TEST(SocketTransport, UnixClusterMatchesSimBitwise) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  run_two_host_cluster(instance, 13, 3, /*use_unix=*/true, "unix",
                       nullptr);
}

TEST(SocketTransport, TcpClusterMatchesSimBitwise) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  run_two_host_cluster(instance, 13, 3, /*use_unix=*/false, "tcp",
                       nullptr);
}

TEST(SocketTransport, ChaosProxyPreservesOutcome) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const FaultPlan chaos = fault_plan_by_name("chaos", 0.2, 77);
  run_two_host_cluster(instance, 13, 3, /*use_unix=*/true, "chaos",
                       &chaos);
}

TEST(SocketTransport, RejectsBadManifest) {
  SocketTransportOptions options;
  options.hosts.resize(2);
  options.hosts[0] = {"unix:/tmp/dlb_gap_a.sock", 0, 2};
  options.hosts[1] = {"unix:/tmp/dlb_gap_b.sock", 3, 4};  // gap: machine 2
  options.self = 0;
  EXPECT_THROW(SocketTransport{options}, std::invalid_argument);

  // The listener address must parse; a malformed scheme fails fast.
  options.hosts[0] = {"nonsense-address", 0, 3};
  options.hosts[1] = {"unix:/tmp/dlb_gap_b.sock", 3, 4};
  EXPECT_THROW(SocketTransport{options}, std::invalid_argument);
}

TEST(SocketTransport, ListenAddressIsConcrete) {
  // Port 0 asks the OS for an ephemeral port; listen_address() must
  // report the port actually bound, which is what a launcher advertises.
  SocketTransportOptions options;
  options.hosts.resize(2);
  options.hosts[0] = {"tcp:127.0.0.1:0", 0, 1};
  options.hosts[1] = {"tcp:127.0.0.1:0", 1, 2};
  options.self = 0;
  SocketTransport transport(options);
  const std::string address = transport.listen_address();
  EXPECT_EQ(address.rfind("tcp:", 0), 0u);
  EXPECT_NE(address, "tcp:127.0.0.1:0");
}

}  // namespace
}  // namespace dlb::net
