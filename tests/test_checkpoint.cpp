#include "dist/checkpoint.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dist/churn.hpp"
#include "dist/exchange_engine.hpp"
#include "dist/parallel_exchange_engine.hpp"
#include "obs/obs.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::dist {
namespace {

bool same_event(const obs::TraceEvent& a, const obs::TraceEvent& b) {
  return a.ts_us == b.ts_us && a.tid == b.tid && a.phase == b.phase &&
         a.name == b.name && a.category == b.category && a.args == b.args;
}

/// The resumed run's trace must be exactly the uninterrupted run's events
/// from the halt point on (timestamps continue, nothing repeated).
void expect_trace_suffix(const obs::Tracer& full, const obs::Tracer& tail) {
  const std::vector<obs::TraceEvent> all = full.events();
  const std::vector<obs::TraceEvent> suffix = tail.events();
  ASSERT_LE(suffix.size(), all.size());
  const std::size_t offset = all.size() - suffix.size();
  for (std::size_t k = 0; k < suffix.size(); ++k) {
    EXPECT_TRUE(same_event(all[offset + k], suffix[k]))
        << "trace event " << k << " of the resumed run differs from "
        << "uninterrupted event " << offset + k;
  }
}

TEST(Checkpoint, SaveLoadRoundTripsEveryFieldBitExactly) {
  Checkpoint ck;
  ck.engine = Checkpoint::Engine::kParallel;
  ck.seed = 0xDEADBEEFULL;
  ck.num_machines = 3;
  ck.num_jobs = 5;
  ck.rng_state = {1, 2, 3, 0xFFFFFFFFFFFFFFFFULL};
  ck.order = {2, 0, 1};
  ck.epochs = 17;
  ck.next_session = 42;
  ck.initial_makespan = 0.1;  // not exactly representable: bit test
  ck.best_makespan = 1.0 / 3.0;
  ck.exchanges = 7;
  ck.changed_exchanges = 4;
  ck.migrations = 9;
  ck.conflicts = 2;
  ck.peer_retries = 5;
  ck.live = {1, 0, 1};
  ck.assignment = {0, kUnassigned, 2, 0, 2};
  ck.loads = {0.1 + 0.2, 0.0, 12.75};
  ck.churn_cursor = 3;
  ck.churn_queue = {1};
  ck.churn = {1, 2, 3, 4, 3};
  ck.obs_counters = {{"churn.crashes", 3}, {"parexchange.sessions", 7}};

  std::stringstream bytes;
  ck.save(bytes);
  const Checkpoint loaded = Checkpoint::load(bytes);

  EXPECT_EQ(loaded.engine, ck.engine);
  EXPECT_EQ(loaded.seed, ck.seed);
  EXPECT_EQ(loaded.num_machines, ck.num_machines);
  EXPECT_EQ(loaded.num_jobs, ck.num_jobs);
  EXPECT_EQ(loaded.rng_state, ck.rng_state);
  EXPECT_EQ(loaded.order, ck.order);
  EXPECT_EQ(loaded.epochs, ck.epochs);
  EXPECT_EQ(loaded.next_session, ck.next_session);
  EXPECT_EQ(loaded.initial_makespan, ck.initial_makespan);
  EXPECT_EQ(loaded.best_makespan, ck.best_makespan);
  EXPECT_EQ(loaded.exchanges, ck.exchanges);
  EXPECT_EQ(loaded.changed_exchanges, ck.changed_exchanges);
  EXPECT_EQ(loaded.migrations, ck.migrations);
  EXPECT_EQ(loaded.conflicts, ck.conflicts);
  EXPECT_EQ(loaded.peer_retries, ck.peer_retries);
  EXPECT_EQ(loaded.live, ck.live);
  EXPECT_EQ(loaded.assignment, ck.assignment);
  EXPECT_EQ(loaded.loads, ck.loads);
  EXPECT_EQ(loaded.churn_cursor, ck.churn_cursor);
  EXPECT_EQ(loaded.churn_queue, ck.churn_queue);
  EXPECT_EQ(loaded.churn.joins, ck.churn.joins);
  EXPECT_EQ(loaded.churn.redispatched, ck.churn.redispatched);
  EXPECT_EQ(loaded.obs_counters, ck.obs_counters);

  // Byte-determinism of the format itself: re-saving reproduces the bytes.
  std::stringstream again;
  loaded.save(again);
  std::stringstream original;
  ck.save(original);
  EXPECT_EQ(again.str(), original.str());
}

TEST(Checkpoint, LoadRejectsWrongHeader) {
  std::stringstream bytes("dlb-instance v1\n");
  EXPECT_THROW((void)Checkpoint::load(bytes), std::runtime_error);
}

TEST(Checkpoint, MakeScheduleRejectsShapeMismatch) {
  Checkpoint ck;
  ck.num_machines = 3;
  ck.num_jobs = 5;
  const Instance inst = gen::identical_uniform(4, 5, 1.0, 2.0, 1);
  EXPECT_THROW((void)ck.make_schedule(inst), std::invalid_argument);
}

TEST(Checkpoint, ObsCounterHelperSortsAndOmitsZeros) {
  ChurnCounters churn;
  churn.crashes = 2;
  churn.orphaned = 5;
  const auto counters = checkpoint_obs_counters(
      {{"z.last", 1}, {"a.first", 0}, {"m.mid", 3}}, churn);
  const std::vector<std::pair<std::string, std::uint64_t>> expected = {
      {"churn.crashes", 2}, {"churn.orphaned", 5}, {"m.mid", 3},
      {"z.last", 1}};
  EXPECT_EQ(counters, expected);
}

// ----- restore equivalence: the tentpole contract -----
//
// checkpoint at epoch k + restore + run to completion == one uninterrupted
// run, bitwise: report JSON, final schedule fingerprint, obs counters and
// the post-k trace events — at any thread count.

struct SeqRun {
  RunResult result;
  std::uint64_t fingerprint = 0;
  obs::Metrics metrics;
  obs::Tracer tracer;
};

void run_seq(SeqRun& run, const Instance& inst, const ChurnPlan& plan,
             const Checkpoint* resume, std::optional<std::uint64_t> halt,
             Checkpoint* out) {
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  EngineOptions options;
  options.max_exchanges = 150;
  options.churn = &plan;
  options.resume = resume;
  options.halt_after_epoch = halt;
  options.checkpoint_out = out;
  const obs::Context context{&run.metrics, &run.tracer};
  options.obs = &context;
  Schedule schedule = resume != nullptr
                          ? resume->make_schedule(inst)
                          : Schedule(inst, gen::random_assignment(inst, 2));
  stats::Rng rng(3);
  run.result = ExchangeEngine(kernel, selector).run(schedule, options, rng);
  run.fingerprint = schedule.fingerprint();
}

TEST(CheckpointRestore, SequentialRunResumesBitwiseIdentically) {
  const Instance inst = gen::identical_uniform(5, 30, 1.0, 10.0, 1);
  ChurnPlan plan;
  plan.seed = 4;
  plan.events = {{2, ChurnKind::kCrash, 4},
                 {4, ChurnKind::kDrain, 3},
                 {6, ChurnKind::kJoin, 4}};

  SeqRun uninterrupted;
  run_seq(uninterrupted, inst, plan, nullptr, std::nullopt, nullptr);
  ASSERT_GT(uninterrupted.result.epochs, 4u);

  // Halt at an interior epoch and snapshot.
  Checkpoint snapshot;
  SeqRun halted;
  run_seq(halted, inst, plan, nullptr, uninterrupted.result.epochs / 2,
          &snapshot);
  ASSERT_TRUE(halted.result.halted);

  // Round-trip through the text format, then finish the run.
  std::stringstream bytes;
  snapshot.save(bytes);
  const Checkpoint restored = Checkpoint::load(bytes);
  SeqRun resumed;
  run_seq(resumed, inst, plan, &restored, std::nullopt, nullptr);

  EXPECT_EQ(resumed.fingerprint, uninterrupted.fingerprint);
  EXPECT_EQ(resumed.result.to_json().dump(),
            uninterrupted.result.to_json().dump());
  EXPECT_EQ(resumed.metrics.snapshot().dump(),
            uninterrupted.metrics.snapshot().dump());
  expect_trace_suffix(uninterrupted.tracer, resumed.tracer);
}

struct ParRun {
  ParallelRunResult result;
  std::uint64_t fingerprint = 0;
  obs::Metrics metrics;
  obs::Tracer tracer;
};

void run_par(ParRun& run, const Instance& inst, const ChurnPlan& plan,
             parallel::ThreadPool* pool, const Checkpoint* resume,
             std::optional<std::uint64_t> halt, Checkpoint* out) {
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  ParallelEngineOptions options;
  options.max_exchanges = 140;
  options.churn = &plan;
  options.pool = pool;
  options.resume = resume;
  options.halt_after_epoch = halt;
  options.checkpoint_out = out;
  const obs::Context context{&run.metrics, &run.tracer};
  options.obs = &context;
  Schedule schedule = resume != nullptr
                          ? resume->make_schedule(inst)
                          : Schedule(inst, gen::random_assignment(inst, 5));
  run.result =
      ParallelExchangeEngine(kernel, selector).run(schedule, options, 6);
  run.fingerprint = schedule.fingerprint();
}

TEST(CheckpointRestore, ParallelRunResumesBitwiseIdenticallyAtAnyThreadCount) {
  const Instance inst = gen::identical_uniform(8, 48, 1.0, 10.0, 4);
  ChurnPlan plan;
  plan.seed = 7;
  plan.events = {{2, ChurnKind::kCrash, 7},
                 {3, ChurnKind::kDrain, 6},
                 {5, ChurnKind::kJoin, 7}};

  ParRun uninterrupted;
  run_par(uninterrupted, inst, plan, nullptr, nullptr, std::nullopt,
          nullptr);
  ASSERT_GT(uninterrupted.result.epochs, 4u);
  const std::uint64_t halt_epoch = uninterrupted.result.epochs / 2;

  parallel::ThreadPool pool(8);
  // Halt on one thread count, resume on another: the checkpoint must be
  // interchangeable because every snapshot happens in a sequential phase.
  for (parallel::ThreadPool* halt_pool :
       {static_cast<parallel::ThreadPool*>(nullptr), &pool}) {
    Checkpoint snapshot;
    ParRun halted;
    run_par(halted, inst, plan, halt_pool, nullptr, halt_epoch, &snapshot);
    ASSERT_TRUE(halted.result.halted);

    std::stringstream bytes;
    snapshot.save(bytes);
    const Checkpoint restored = Checkpoint::load(bytes);
    for (parallel::ThreadPool* resume_pool :
         {static_cast<parallel::ThreadPool*>(nullptr), &pool}) {
      ParRun resumed;
      run_par(resumed, inst, plan, resume_pool, &restored, std::nullopt,
              nullptr);
      EXPECT_EQ(resumed.fingerprint, uninterrupted.fingerprint);
      EXPECT_EQ(resumed.result.to_json().dump(),
                uninterrupted.result.to_json().dump());
      EXPECT_EQ(resumed.metrics.snapshot().dump(),
                uninterrupted.metrics.snapshot().dump());
      expect_trace_suffix(uninterrupted.tracer, resumed.tracer);
    }
  }
}

TEST(CheckpointRestore, SequentialEngineRejectsForeignCheckpoint) {
  const Instance inst = gen::identical_uniform(3, 9, 1.0, 2.0, 8);
  Checkpoint ck;
  ck.engine = Checkpoint::Engine::kParallel;
  ck.num_machines = 3;
  ck.num_jobs = 9;
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  EngineOptions options;
  options.resume = &ck;
  Schedule schedule(inst, Assignment::round_robin(9, 3));
  stats::Rng rng(9);
  EXPECT_THROW(
      (void)ExchangeEngine(kernel, selector).run(schedule, options, rng),
      std::invalid_argument);
}

TEST(CheckpointRestore, ParallelEngineRejectsSeedMismatch) {
  const Instance inst = gen::identical_uniform(4, 12, 1.0, 2.0, 10);
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  const ParallelExchangeEngine engine(kernel, selector);

  Checkpoint snapshot;
  ParallelEngineOptions options;
  options.max_exchanges = 60;
  options.halt_after_epoch = 1;
  options.checkpoint_out = &snapshot;
  Schedule schedule(inst, Assignment::round_robin(12, 4));
  const ParallelRunResult halted = engine.run(schedule, options, 11);
  ASSERT_TRUE(halted.halted);

  ParallelEngineOptions resume_options;
  resume_options.resume = &snapshot;
  Schedule resumed = snapshot.make_schedule(inst);
  EXPECT_THROW((void)engine.run(resumed, resume_options, 12),
               std::invalid_argument);
}

}  // namespace
}  // namespace dlb::dist
