#include "centralized/exact_bnb.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/schedule.hpp"
#include "core/validation.hpp"

namespace dlb::centralized {
namespace {

/// Brute-force oracle: tries all m^n assignments.
Cost brute_force_opt(const Instance& inst) {
  const std::size_t m = inst.num_machines();
  const std::size_t n = inst.num_jobs();
  std::vector<MachineId> choice(n, 0);
  Cost best = std::numeric_limits<Cost>::infinity();
  for (;;) {
    std::vector<Cost> loads(m, 0.0);
    for (JobId j = 0; j < n; ++j) loads[choice[j]] += inst.cost(choice[j], j);
    best = std::min(best, *std::max_element(loads.begin(), loads.end()));
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n && ++choice[pos] == m) {
      choice[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

TEST(ExactBnb, TrivialSingleMachine) {
  const Instance inst = Instance::identical(1, {2.0, 3.0});
  const auto result = solve_exact(inst);
  EXPECT_TRUE(result.proven);
  EXPECT_DOUBLE_EQ(result.optimal, 5.0);
}

TEST(ExactBnb, KnownTwoMachineSplit) {
  const Instance inst = Instance::identical(2, {3.0, 3.0, 2.0, 2.0, 2.0});
  const auto result = solve_exact(inst);
  EXPECT_DOUBLE_EQ(result.optimal, 6.0);
}

TEST(ExactBnb, SolvesTable2TrapToOne) {
  const auto trap = gen::table2_pairwise_trap(10.0);
  const auto result = solve_exact(trap.instance);
  EXPECT_TRUE(result.proven);
  EXPECT_DOUBLE_EQ(result.optimal, 1.0);
}

TEST(ExactBnb, SolvesTable1TrapToTwo) {
  const auto trap = gen::table1_work_stealing_trap(10.0);
  const auto result = solve_exact(trap.instance);
  EXPECT_TRUE(result.proven);
  EXPECT_DOUBLE_EQ(result.optimal, 2.0);
}

TEST(ExactBnb, AssignmentAchievesReportedMakespan) {
  const Instance inst = gen::uniform_unrelated(3, 8, 1.0, 9.0, 21);
  const auto result = solve_exact(inst);
  ASSERT_TRUE(result.proven);
  Schedule s(inst, result.assignment);
  EXPECT_TRUE(is_complete_partition(s));
  EXPECT_NEAR(s.makespan(), result.optimal, 1e-9);
}

TEST(ExactBnb, NodeLimitYieldsUnprovenUpperBound) {
  const Instance inst = gen::uniform_unrelated(4, 12, 1.0, 9.0, 22);
  ExactOptions options;
  options.node_limit = 10;
  const auto result = solve_exact(inst, options);
  EXPECT_FALSE(result.proven);
  // Still a feasible upper bound.
  Schedule s(inst, result.assignment);
  EXPECT_TRUE(is_complete_partition(s));
  EXPECT_NEAR(s.makespan(), result.optimal, 1e-9);
}

class ExactVsBruteSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBruteSweep, MatchesBruteForceUnrelated) {
  const Instance inst = gen::uniform_unrelated(3, 6, 1.0, 10.0, GetParam());
  const auto result = solve_exact(inst);
  ASSERT_TRUE(result.proven);
  EXPECT_NEAR(result.optimal, brute_force_opt(inst), 1e-9);
}

TEST_P(ExactVsBruteSweep, MatchesBruteForceTwoCluster) {
  const Instance inst =
      gen::two_cluster_uniform(2, 2, 6, 1.0, 10.0, GetParam());
  const auto result = solve_exact(inst);
  ASSERT_TRUE(result.proven);
  EXPECT_NEAR(result.optimal, brute_force_opt(inst), 1e-9);
}

TEST_P(ExactVsBruteSweep, NeverBeatsLowerBound) {
  const Instance inst = gen::uniform_unrelated(3, 7, 1.0, 15.0, GetParam());
  const auto result = solve_exact(inst);
  ASSERT_TRUE(result.proven);
  EXPECT_GE(result.optimal, max_min_cost_bound(inst) - 1e-9);
  EXPECT_GE(result.optimal, min_work_bound(inst) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace dlb::centralized
