#include "dist/async_runner.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"
#include "dist/dlb2c.hpp"
#include "net/network.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::dist {
namespace {

TEST(Network, DeliversAfterLatencyAndCounts) {
  des::Engine engine;
  stats::Rng rng(1);
  const net::ConstantLatency latency(2.5);
  net::Network network(engine, latency, rng);
  double delivered_at = -1.0;
  network.send(0, 1, [&] { delivered_at = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(delivered_at, 2.5);
  EXPECT_EQ(network.messages_sent(), 1u);
}

TEST(Network, UniformLatencyStaysInRange) {
  des::Engine engine;
  stats::Rng rng(2);
  const net::UniformLatency latency(1.0, 3.0);
  for (int i = 0; i < 1000; ++i) {
    const des::SimTime t = latency.sample(0, 1, rng);
    EXPECT_GE(t, 1.0);
    EXPECT_LT(t, 3.0);
  }
}

TEST(AsyncRunner, ImprovesThePiledDistribution) {
  const Instance inst = gen::two_cluster_uniform(6, 3, 90, 1.0, 100.0, 3);
  Schedule s(inst, Assignment::all_on(90, 0));
  const Dlb2cKernel kernel;
  AsyncOptions options;
  options.duration = 60.0;
  options.seed = 4;
  const AsyncRunResult result = run_async(s, kernel, options);
  EXPECT_TRUE(is_complete_partition(s));
  EXPECT_LT(result.final_makespan, result.initial_makespan / 2.0);
  EXPECT_GT(result.exchanges, 0u);
  EXPECT_GT(result.messages, result.exchanges);
}

TEST(AsyncRunner, DeterministicGivenSeed) {
  const Instance inst = gen::two_cluster_uniform(4, 2, 48, 1.0, 50.0, 5);
  const Dlb2cKernel kernel;
  AsyncOptions options;
  options.duration = 30.0;
  options.seed = 6;

  Schedule s1(inst, gen::random_assignment(inst, 7));
  Schedule s2(inst, gen::random_assignment(inst, 7));
  const AsyncRunResult r1 = run_async(s1, kernel, options);
  const AsyncRunResult r2 = run_async(s2, kernel, options);
  EXPECT_EQ(s1.assignment(), s2.assignment());
  EXPECT_EQ(r1.exchanges, r2.exchanges);
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_DOUBLE_EQ(r1.final_makespan, r2.final_makespan);
}

TEST(AsyncRunner, HigherLatencyCompletesFewerSessions) {
  const Instance inst = gen::two_cluster_uniform(4, 2, 48, 1.0, 50.0, 8);
  const Dlb2cKernel kernel;

  AsyncOptions fast;
  fast.duration = 50.0;
  fast.message_latency = 0.01;
  fast.seed = 9;
  Schedule s_fast(inst, gen::random_assignment(inst, 10));
  const AsyncRunResult r_fast = run_async(s_fast, kernel, fast);

  AsyncOptions slow = fast;
  slow.message_latency = 2.0;
  Schedule s_slow(inst, gen::random_assignment(inst, 10));
  const AsyncRunResult r_slow = run_async(s_slow, kernel, slow);

  EXPECT_GT(r_fast.exchanges, r_slow.exchanges);
}

TEST(AsyncRunner, TraceIsTimeOrderedWithinHorizon) {
  const Instance inst = gen::two_cluster_uniform(3, 3, 36, 1.0, 50.0, 11);
  Schedule s(inst, gen::random_assignment(inst, 12));
  const Dlb2cKernel kernel;
  AsyncOptions options;
  options.duration = 20.0;
  options.record_trace = true;
  options.seed = 13;
  const AsyncRunResult result = run_async(s, kernel, options);
  ASSERT_FALSE(result.trace.empty());
  for (std::size_t k = 1; k < result.trace.size(); ++k) {
    EXPECT_GE(result.trace[k].time, result.trace[k - 1].time);
  }
  EXPECT_LE(result.trace.back().time, options.duration + 1e-9);
}

TEST(AsyncRunner, LocksPreventLostUpdates) {
  // Consistency under concurrency: after any run the schedule's incremental
  // state must match a from-scratch recomputation.
  const Instance inst = gen::two_cluster_uniform(5, 5, 100, 1.0, 100.0, 14);
  Schedule s(inst, gen::random_assignment(inst, 15));
  const Dlb2cKernel kernel;
  AsyncOptions options;
  options.duration = 40.0;
  options.seed = 16;
  run_async(s, kernel, options);
  EXPECT_TRUE(s.check_consistency());
}

TEST(AsyncRunner, RejectsBadOptions) {
  const Instance inst = gen::two_cluster_uniform(1, 1, 4, 1.0, 5.0, 17);
  Schedule s(inst, gen::random_assignment(inst, 18));
  const Dlb2cKernel kernel;
  AsyncOptions options;
  options.mean_think_time = 0.0;
  EXPECT_THROW(run_async(s, kernel, options), std::invalid_argument);

  const Instance one = Instance::identical(1, {1.0});
  Schedule s_one(one, Assignment::all_on(1, 0));
  const pairwise::BasicGreedyKernel greedy;
  AsyncOptions ok;
  EXPECT_THROW(run_async(s_one, greedy, ok), std::invalid_argument);
}

TEST(AsyncRunner, SessionsPerMachineNormalization) {
  AsyncRunResult result;
  result.exchanges = 60;
  EXPECT_DOUBLE_EQ(result.sessions_per_machine(12), 5.0);
}

}  // namespace
}  // namespace dlb::dist
