// The daemon's operator command channel exercised in process: two Daemons
// over Unix-domain sockets run the protocol to completion, then the
// observability commands (`metrics`, `scrape`, `flight`, `trace`) must
// return well-formed, parseable replies — and once `shutdown` has been
// accepted, every further command is refused with a clean error rather
// than a truncated export (the scrape-vs-shutdown race of the PR).

#include "daemon/daemon.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"
#include "net/socket_transport.hpp"
#include "stats/json.hpp"

namespace dlb::daemon {
namespace {

std::vector<net::HostSpec> make_unix_hosts(const std::string& tag,
                                           std::size_t machines) {
  const MachineId split = static_cast<MachineId>(machines / 2);
  const std::string dir = std::filesystem::temp_directory_path().string();
  const std::string unique = tag + "_" + std::to_string(::getpid());
  std::vector<net::HostSpec> hosts(2);
  hosts[0].address = "unix:" + dir + "/dlb_dmn_" + unique + "_a.sock";
  hosts[1].address = "unix:" + dir + "/dlb_dmn_" + unique + "_b.sock";
  hosts[0].machine_lo = 0;
  hosts[0].machine_hi = split;
  hosts[1].machine_lo = split;
  hosts[1].machine_hi = static_cast<MachineId>(machines);
  return hosts;
}

struct Pair {
  std::unique_ptr<Daemon> a;
  std::unique_ptr<Daemon> b;
};

/// Two in-process daemons run to protocol completion (higher rank dials
/// first, as everywhere else in the socket tests).
Pair converged_pair(const Instance& instance, const std::string& tag,
                    const dist::Dlb2cKernel& kernel, bool trace) {
  DaemonOptions options;
  options.hosts = make_unix_hosts(tag, instance.num_machines());
  options.kernel = &kernel;
  options.seed = 13;
  options.rounds = 3;
  options.retry_timeout = 0.05;
  options.trace = trace;
  Pair pair;
  options.self = 0;
  pair.a = std::make_unique<Daemon>(instance, options);
  options.self = 1;
  pair.b = std::make_unique<Daemon>(instance, options);
  pair.b->connect_and_start();
  pair.a->connect_and_start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!(pair.a->runner().done() && pair.b->runner().done())) {
    EXPECT_LT(std::chrono::steady_clock::now(), deadline)
        << "daemons did not converge";
    if (std::chrono::steady_clock::now() >= deadline) break;
    pair.a->poll(0.005);
    pair.b->poll(0.005);
  }
  return pair;
}

/// The data lines of a reply, i.e. everything before the "ok" terminator.
std::string payload_of(const std::string& reply) {
  EXPECT_TRUE(reply.size() >= 3 && reply.rfind("ok\n") == reply.size() - 3)
      << reply;
  return reply.substr(0, reply.size() - 3);
}

TEST(Daemon, MetricsReplyCarriesSocketAndUptimeSeries) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const dist::Dlb2cKernel kernel;
  Pair pair = converged_pair(instance, "metrics", kernel, /*trace=*/false);

  const std::string body = payload_of(pair.a->execute("metrics"));
  const stats::Json doc = stats::Json::parse(body);
  const stats::Json* counters = doc.find("counters");
  const stats::Json* gauges = doc.find("gauges");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(gauges, nullptr);
  EXPECT_NE(counters->find("dist.transport.sessions"), nullptr);
  // Socket byte/frame accounting from the transport layer...
  EXPECT_NE(body.find("net.socket."), std::string::npos);
  // ...and the uptime gauge refreshed at scrape time.
  const stats::Json* uptime = gauges->find("daemon.uptime_seconds");
  ASSERT_NE(uptime, nullptr);
  EXPECT_GE(uptime->as_number(), 0.0);

  pair.a->execute("shutdown");
  pair.b->execute("shutdown");
}

TEST(Daemon, ScrapeReturnsPrometheusExposition) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const dist::Dlb2cKernel kernel;
  Pair pair = converged_pair(instance, "scrape", kernel, /*trace=*/false);

  const std::string body = payload_of(pair.a->execute("scrape"));
  EXPECT_NE(body.find("# TYPE dlb_dist_transport_sessions counter"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("dlb_daemon_uptime_seconds"), std::string::npos);

  pair.a->execute("shutdown");
  pair.b->execute("shutdown");
}

TEST(Daemon, FlightAndTraceExportsParse) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const dist::Dlb2cKernel kernel;
  Pair pair = converged_pair(instance, "flight", kernel, /*trace=*/true);

  const stats::Json flight =
      stats::Json::parse(payload_of(pair.a->execute("flight")));
  const stats::Json* schema = flight.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "dlb-flight-v1");
  const stats::Json* samples = flight.find("samples");
  ASSERT_NE(samples, nullptr);
  EXPECT_GT(samples->as_array().size(), 0u);

  const stats::Json trace =
      stats::Json::parse(payload_of(pair.a->execute("trace")));
  const stats::Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->as_array().size(), 0u);

  pair.a->execute("shutdown");
  pair.b->execute("shutdown");
}

TEST(Daemon, TraceCommandFailsCleanlyWhenTracingIsOff) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const dist::Dlb2cKernel kernel;
  Pair pair = converged_pair(instance, "notrace", kernel, /*trace=*/false);

  const std::string reply = pair.a->execute("trace");
  EXPECT_EQ(reply.rfind("error: ", 0), 0u) << reply;

  pair.a->execute("shutdown");
  pair.b->execute("shutdown");
}

TEST(Daemon, CommandsAfterShutdownAreRefused) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 32, 1.0, 100.0, 12);
  const dist::Dlb2cKernel kernel;
  Pair pair = converged_pair(instance, "refuse", kernel, /*trace=*/true);

  EXPECT_EQ(pair.a->execute("shutdown"), "ok\n");
  EXPECT_TRUE(pair.a->shutdown_requested());
  // A scrape racing the daemon's exit gets a clean refusal, never a
  // truncated export — for every command, including the exports.
  for (const std::string command :
       {"metrics", "scrape", "flight", "trace", "status", "shutdown"}) {
    EXPECT_EQ(pair.a->execute(command), "error: daemon is shutting down\n")
        << command;
  }

  pair.b->execute("shutdown");
}

}  // namespace
}  // namespace dlb::daemon
