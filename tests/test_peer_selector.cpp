#include "dist/peer_selector.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dlb::dist {
namespace {

TEST(UniformPeerSelector, NeverReturnsInitiator) {
  const UniformPeerSelector selector;
  stats::Rng rng(1);
  for (int i = 0; i < 10'000; ++i) {
    const MachineId initiator = i % 5;
    EXPECT_NE(selector.select(initiator, 5, rng), initiator);
  }
}

TEST(UniformPeerSelector, CoversAllOtherMachines) {
  const UniformPeerSelector selector;
  stats::Rng rng(2);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 30'000; ++i) {
    ++counts[selector.select(2, 6, rng)];
  }
  EXPECT_EQ(counts[2], 0);
  for (MachineId i = 0; i < 6; ++i) {
    if (i == 2) continue;
    // Uniform over 5 peers: expect 6000 each, allow 10%.
    EXPECT_NEAR(counts[i], 6000, 600);
  }
}

TEST(UniformPeerSelector, TwoMachinesAlwaysPickTheOther) {
  const UniformPeerSelector selector;
  stats::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(selector.select(0, 2, rng), 1u);
    EXPECT_EQ(selector.select(1, 2, rng), 0u);
  }
}

TEST(UniformPeerSelector, DrawsPassAChiSquaredUniformityTest) {
  // 7 machines -> 6 peer cells, df = 5. Critical value at alpha = 0.001
  // is 20.52; a correct uniform selector fails this roughly once per
  // thousand seeds, and a modulo-biased or off-by-one selector fails it
  // essentially always.
  const UniformPeerSelector selector;
  stats::Rng rng(6);
  constexpr int kDraws = 60'000;
  std::vector<int> counts(7, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++counts[selector.select(3, 7, rng)];
  }
  ASSERT_EQ(counts[3], 0);
  const double expected = kDraws / 6.0;
  double chi2 = 0.0;
  for (MachineId i = 0; i < 7; ++i) {
    if (i == 3) continue;
    const double diff = counts[i] - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 20.52) << "chi^2 = " << chi2;
}

TEST(RingPeerSelector, NeighbourDrawsAreBalanced) {
  // Two cells (left/right neighbour), df = 1: critical value 10.83 at
  // alpha = 0.001.
  const RingPeerSelector selector;
  stats::Rng rng(7);
  constexpr int kDraws = 20'000;
  int left = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (selector.select(4, 9, rng) == 3) ++left;
  }
  const double expected = kDraws / 2.0;
  const double diff = left - expected;
  const double chi2 = 2.0 * diff * diff / expected;
  EXPECT_LT(chi2, 10.83) << "left = " << left;
}

TEST(RingPeerSelector, OnlyNeighbours) {
  const RingPeerSelector selector;
  stats::Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    const MachineId peer = selector.select(3, 8, rng);
    EXPECT_TRUE(peer == 2 || peer == 4) << peer;
  }
}

TEST(RingPeerSelector, WrapsAround) {
  const RingPeerSelector selector;
  stats::Rng rng(5);
  bool saw_last = false;
  bool saw_next = false;
  for (int i = 0; i < 1000; ++i) {
    const MachineId peer = selector.select(0, 8, rng);
    EXPECT_TRUE(peer == 7 || peer == 1) << peer;
    saw_last |= peer == 7;
    saw_next |= peer == 1;
  }
  EXPECT_TRUE(saw_last);
  EXPECT_TRUE(saw_next);
}

}  // namespace
}  // namespace dlb::dist
