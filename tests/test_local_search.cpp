#include "centralized/local_search.hpp"

#include <gtest/gtest.h>

#include "centralized/ect.hpp"
#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/validation.hpp"

namespace dlb::centralized {
namespace {

TEST(LocalSearch, NeverIncreasesTheMakespan) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Instance inst = gen::uniform_unrelated(4, 20, 1.0, 50.0, seed);
    Schedule s(inst, gen::random_assignment(inst, seed + 1));
    const Cost before = s.makespan();
    local_search_improve(s);
    EXPECT_LE(s.makespan(), before + 1e-9);
    EXPECT_TRUE(is_complete_partition(s));
  }
}

TEST(LocalSearch, FixesAnObviousImbalance) {
  const Instance inst = Instance::identical(2, {1.0, 1.0});
  Schedule s(inst, Assignment::all_on(2, 0));
  const auto result = local_search_improve(s);
  EXPECT_TRUE(result.local_optimum);
  EXPECT_GE(result.steps, 1u);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);
}

TEST(LocalSearch, SwapEscapesMoveOnlyOptimum) {
  // Machine 0 holds a job that is big there but small on machine 1, and
  // vice versa. Moving either job alone overloads the target; only the
  // swap fixes it.
  const Instance inst = Instance::unrelated({{5.0, 1.0}, {1.0, 5.0}});
  Schedule s(inst);
  s.assign(0, 0);  // cost 5 on machine 0
  s.assign(1, 1);  // cost 5 on machine 1
  ASSERT_DOUBLE_EQ(s.makespan(), 5.0);

  Schedule move_only = s;
  LocalSearchOptions no_swaps;
  no_swaps.allow_swaps = false;
  const auto move_result = local_search_improve(move_only, no_swaps);
  EXPECT_TRUE(move_result.local_optimum);
  EXPECT_DOUBLE_EQ(move_only.makespan(), 5.0);  // stuck

  const auto swap_result = local_search_improve(s);
  EXPECT_TRUE(swap_result.local_optimum);
  EXPECT_DOUBLE_EQ(s.makespan(), 1.0);  // swapped to the diagonal
}

TEST(LocalSearch, LocalOptimumHasNoImprovingMove) {
  const Instance inst = gen::two_cluster_uniform(2, 2, 12, 1.0, 20.0, 5);
  Schedule s(inst, gen::random_assignment(inst, 6));
  const auto result = local_search_improve(s);
  ASSERT_TRUE(result.local_optimum);
  // Re-running immediately makes no further progress.
  const auto again = local_search_improve(s);
  EXPECT_EQ(again.steps, 0u);
}

TEST(LocalSearch, StepCapIsHonoured) {
  const Instance inst = gen::identical_uniform(4, 40, 1.0, 10.0, 7);
  Schedule s(inst, Assignment::all_on(40, 0));
  LocalSearchOptions options;
  options.max_steps = 2;
  const auto result = local_search_improve(s, options);
  EXPECT_EQ(result.steps, 2u);
  EXPECT_FALSE(result.local_optimum);
}

class LocalSearchSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalSearchSweep, ImprovesEctButNeverBeatsOpt) {
  const Instance inst = gen::uniform_unrelated(3, 9, 1.0, 25.0, GetParam());
  Schedule s = ect_schedule(inst);
  const Cost ect = s.makespan();
  local_search_improve(s);
  EXPECT_LE(s.makespan(), ect + 1e-9);
  const auto exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  EXPECT_GE(s.makespan(), exact.optimal - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchSweep,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(LocalSearch, SingleMachineIsNoop) {
  const Instance inst = Instance::identical(1, {3.0, 4.0});
  Schedule s(inst, Assignment::all_on(2, 0));
  const auto result = local_search_improve(s);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_TRUE(result.local_optimum);
}

}  // namespace
}  // namespace dlb::centralized
