#include "dist/ojtb.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "dist/convergence.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::dist {
namespace {

/// A single-job-type instance on fully heterogeneous machines: machine i
/// takes per_job[i] for every job.
Instance single_type_instance(const std::vector<Cost>& per_job,
                              std::size_t num_jobs) {
  std::vector<std::vector<Cost>> rows;
  rows.reserve(per_job.size());
  for (const Cost p : per_job) rows.emplace_back(num_jobs, p);
  return Instance::unrelated(std::move(rows));
}

TEST(SingleTypeOptimal, HandChecked) {
  // 2 machines at 1s/job and 2s/job, 3 jobs: {2,1} split -> makespan 2.
  EXPECT_DOUBLE_EQ(single_type_optimal_makespan({1.0, 2.0}, 3), 2.0);
  // 6 jobs on 3 equal machines: 2 each.
  EXPECT_DOUBLE_EQ(single_type_optimal_makespan({1.0, 1.0, 1.0}, 6), 2.0);
  // One very slow machine is simply unused.
  EXPECT_DOUBLE_EQ(single_type_optimal_makespan({1.0, 100.0}, 3), 3.0);
  EXPECT_DOUBLE_EQ(single_type_optimal_makespan({5.0}, 4), 20.0);
  EXPECT_DOUBLE_EQ(single_type_optimal_makespan({2.0, 3.0}, 0), 0.0);
}

TEST(SingleTypeOptimal, RejectsBadInput) {
  EXPECT_THROW((void)single_type_optimal_makespan({}, 3),
               std::invalid_argument);
  EXPECT_THROW((void)single_type_optimal_makespan({1.0, 0.0}, 3),
               std::invalid_argument);
}

TEST(Ojtb, ReducesMakespanFromPiledStart) {
  const Instance inst = single_type_instance({1.0, 2.0, 3.0}, 12);
  Schedule s(inst, Assignment::all_on(12, 2));  // all on the slowest
  const Cost initial = s.makespan();
  EngineOptions options;
  options.max_exchanges = 500;
  stats::Rng rng(1);
  const RunResult result = run_ojtb(s, options, rng);
  EXPECT_LT(result.final_makespan, initial);
}

class OjtbLemma4Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OjtbLemma4Sweep, ConvergesToTheOptimum) {
  // Lemma 4: OJTB converges to an optimal distribution for one job type.
  stats::Rng setup(GetParam());
  const std::size_t m = 2 + setup.below(4);
  const std::size_t n = 5 + setup.below(20);
  std::vector<Cost> per_job(m);
  for (auto& p : per_job) p = 1.0 + setup.uniform() * 9.0;
  const Instance inst = single_type_instance(per_job, n);

  Schedule s(inst, gen::random_assignment(inst, GetParam() + 1000));
  EngineOptions options;
  options.max_exchanges = 200'000;
  options.stability_check_interval = 200;
  stats::Rng rng(GetParam() + 2000);
  const RunResult result = run_ojtb(s, options, rng);

  EXPECT_TRUE(result.converged) << "OJTB did not stabilise";
  const Cost optimal = single_type_optimal_makespan(per_job, n);
  EXPECT_NEAR(result.final_makespan, optimal, 1e-6 * optimal)
      << "m=" << m << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OjtbLemma4Sweep,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Ojtb, SweepsReachTheOptimalMakespanPlateau) {
  // This instance wanders on a plateau of optimal schedules (pairs keep
  // swapping equal-load splits), so a strict fixed point may never be
  // reached — Lemma 4 only promises the *makespan* converges. Verify the
  // plateau value is the single-type optimum.
  const std::vector<Cost> per_job = {1.0, 1.5, 4.0};
  const Instance inst = single_type_instance(per_job, 10);
  Schedule s(inst, Assignment::all_on(10, 0));
  const pairwise::BasicGreedyKernel kernel;
  (void)run_to_stability(s, kernel, 100);  // may report a live plateau
  EXPECT_NEAR(s.makespan(), single_type_optimal_makespan(per_job, 10), 1e-9);
}

}  // namespace
}  // namespace dlb::dist
