#include "dist/run_report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dlb::dist {
namespace {

// The JSON shape is a published schema: bench telemetry and downstream
// scripts key on these names, so key set AND order are byte-stable.
// Extend only by appending.
TEST(RunReport, JsonSchemaIsByteStable) {
  RunReport report;
  report.initial_makespan = 10.0;
  report.final_makespan = 4.5;
  report.best_makespan = 4.0;
  report.exchanges = 17;
  report.migrations = 23;
  report.converged = true;
  report.churn_joins = 1;
  report.churn_drains = 2;
  report.churn_crashes = 3;
  report.churn_orphaned = 9;
  report.churn_redispatched = 8;
  report.churn_pending = 1;
  report.risk_jobs = 5;
  report.risk_sigma_max = 1.5;
  report.risk_q95_excess = 0.25;
  EXPECT_EQ(report.to_json().dump(),
            "{\"initial_makespan\":10,\"final_makespan\":4.5,"
            "\"best_makespan\":4,\"exchanges\":17,\"migrations\":23,"
            "\"converged\":true,\"churn_joins\":1,\"churn_drains\":2,"
            "\"churn_crashes\":3,\"churn_orphaned\":9,"
            "\"churn_redispatched\":8,\"churn_pending\":1,"
            "\"risk_jobs\":5,\"risk_sigma_max\":1.5,"
            "\"risk_q95_excess\":0.25}");
}

TEST(RunReport, JsonDefaultsAreZeroAndFalse) {
  const RunReport report;
  EXPECT_EQ(report.to_json().dump(),
            "{\"initial_makespan\":0,\"final_makespan\":0,"
            "\"best_makespan\":0,\"exchanges\":0,\"migrations\":0,"
            "\"converged\":false,\"churn_joins\":0,\"churn_drains\":0,"
            "\"churn_crashes\":0,\"churn_orphaned\":0,"
            "\"churn_redispatched\":0,\"churn_pending\":0,"
            "\"risk_jobs\":0,\"risk_sigma_max\":0,"
            "\"risk_q95_excess\":0}");
}

TEST(RunReport, PrintEmitsTheSharedCliBlock) {
  RunReport report;
  report.initial_makespan = 12.0;
  report.final_makespan = 6.0;
  report.best_makespan = 5.5;
  report.exchanges = 3;
  report.migrations = 4;
  std::ostringstream out;
  report.print(out);
  EXPECT_EQ(out.str(),
            "initial Cmax    : 12\n"
            "final Cmax      : 6\n"
            "best Cmax       : 5.5\n"
            "exchanges       : 3\n"
            "migrations      : 4\n"
            "converged       : no\n");
}

// The CLI block for a churn-free run must not grow lines: the churn
// section only appears when some churn tally is nonzero.
TEST(RunReport, PrintAppendsChurnBlockOnlyForElasticRuns) {
  RunReport report;
  report.churn_crashes = 1;
  report.churn_orphaned = 5;
  report.churn_redispatched = 4;
  report.churn_pending = 1;
  std::ostringstream out;
  report.print(out);
  EXPECT_EQ(out.str(),
            "initial Cmax    : 0\n"
            "final Cmax      : 0\n"
            "best Cmax       : 0\n"
            "exchanges       : 0\n"
            "migrations      : 0\n"
            "converged       : no\n"
            "joins           : 0\n"
            "drains          : 0\n"
            "crashes         : 1\n"
            "orphaned        : 5\n"
            "redispatched    : 4\n"
            "pending         : 1\n");
}

TEST(RunReport, ExchangesPerMachineNormalisation) {
  RunReport report;
  report.exchanges = 96;
  EXPECT_DOUBLE_EQ(report.exchanges_per_machine(32), 3.0);
  EXPECT_DOUBLE_EQ(report.exchanges_per_machine(0), 0.0);
}

}  // namespace
}  // namespace dlb::dist
