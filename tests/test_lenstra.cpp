#include "centralized/lenstra.hpp"

#include <gtest/gtest.h>

#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"

namespace dlb::centralized {
namespace {

TEST(LpLowerBound, ExactOnTrivialInstances) {
  // Two machines, two jobs, each job has a clear home: OPT = 1, and the
  // deadline LP is feasible exactly from tau = 1.
  const Instance inst = Instance::unrelated({{1.0, 9.0}, {9.0, 1.0}});
  EXPECT_NEAR(lp_lower_bound(inst), 1.0, 1e-3);
}

TEST(LpLowerBound, NeverExceedsOptNorFallsBelowCombinatorialBounds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const Instance inst = gen::uniform_unrelated(3, 7, 1.0, 20.0, seed);
    const auto exact = solve_exact(inst);
    ASSERT_TRUE(exact.proven);
    const Cost lp = lp_lower_bound(inst);
    EXPECT_LE(lp, exact.optimal * (1.0 + 1e-3) + 1e-6) << "seed " << seed;
    EXPECT_GE(lp, max_min_cost_bound(inst) - 1e-6);
    EXPECT_GE(lp, min_work_bound(inst) - 1e-6);
  }
}

TEST(LpLowerBound, TighterThanCombinatorialBoundsOnSpecialisedInstances) {
  // Machines are specialised, so the min-work bound (which lets every job
  // run at its global cheapest everywhere) is loose; the LP sees capacity.
  const Instance inst = gen::uniform_unrelated(4, 16, 1.0, 100.0, 99);
  const Cost lp = lp_lower_bound(inst);
  const Cost comb = std::max(max_min_cost_bound(inst), min_work_bound(inst));
  EXPECT_GE(lp, comb - 1e-6);
}

TEST(Lenstra, ProducesCompleteSchedules) {
  const Instance inst = gen::uniform_unrelated(4, 20, 1.0, 50.0, 3);
  const LenstraResult result = lenstra_schedule(inst);
  EXPECT_TRUE(is_complete_partition(result.schedule));
  EXPECT_GT(result.tau, 0.0);
}

class LenstraSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LenstraSweep, TwoApproximationAgainstTau) {
  // The rounding guarantee: makespan <= tau + max assigned cost <= 2 tau
  // (every allowed cost is <= tau by LP construction).
  const Instance inst =
      gen::uniform_unrelated(3, 12, 1.0, 30.0, GetParam());
  const LenstraResult result = lenstra_schedule(inst);
  EXPECT_TRUE(is_complete_partition(result.schedule));
  // tau is a lower bound (up to search tolerance), so this is <= ~2 OPT.
  EXPECT_LE(result.schedule.makespan(), 2.0 * result.tau * (1.0 + 1e-3) + 1e-6)
      << "seed " << GetParam();
}

TEST_P(LenstraSweep, TwoApproximationAgainstExactOpt) {
  const Instance inst = gen::uniform_unrelated(3, 8, 1.0, 20.0, GetParam());
  const auto exact = solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const LenstraResult result = lenstra_schedule(inst);
  EXPECT_LE(result.schedule.makespan(), 2.0 * exact.optimal + 1e-6);
  EXPECT_LE(result.tau, exact.optimal * (1.0 + 1e-3) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LenstraSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Lenstra, WorksOnTwoClusterInstances) {
  const Instance inst = gen::two_cluster_uniform(3, 2, 15, 1.0, 40.0, 7);
  const LenstraResult result = lenstra_schedule(inst);
  EXPECT_TRUE(is_complete_partition(result.schedule));
  EXPECT_GE(result.tau, two_cluster_fractional_opt(inst) - 1e-3);
  EXPECT_LE(result.schedule.makespan(), 2.0 * result.tau * (1.0 + 1e-3));
}

TEST(Lenstra, MatchesOptOnAssignmentLikeInstances) {
  // When every job has a dedicated fast machine and tau = 1 is feasible
  // integrally, the rounding should recover the perfect assignment.
  const Instance inst = Instance::unrelated(
      {{1.0, 9.0, 9.0}, {9.0, 1.0, 9.0}, {9.0, 9.0, 1.0}});
  const LenstraResult result = lenstra_schedule(inst);
  EXPECT_NEAR(result.schedule.makespan(), 1.0, 1e-2);
}

}  // namespace
}  // namespace dlb::centralized
