// Tests for the ordered JSON model behind the bench telemetry: byte
// determinism, number formatting, and parse(dump(v)) round-trips.

#include "stats/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

namespace {

using dlb::stats::Json;

TEST(Json, ObjectsKeepInsertionOrder) {
  Json doc = Json::object();
  doc["zulu"] = 1;
  doc["alpha"] = 2;
  doc["mike"] = 3;
  EXPECT_EQ(doc.dump(), R"({"zulu":1,"alpha":2,"mike":3})");
}

TEST(Json, IndexingOverwritesInPlace) {
  Json doc = Json::object();
  doc["a"] = 1;
  doc["b"] = 2;
  doc["a"] = 10;
  EXPECT_EQ(doc.dump(), R"({"a":10,"b":2})");
  EXPECT_EQ(doc.size(), 2u);
}

TEST(Json, NumberFormattingIsShortestRoundTrip) {
  EXPECT_EQ(Json::number_to_string(0.0), "0");
  EXPECT_EQ(Json::number_to_string(3.0), "3");
  EXPECT_EQ(Json::number_to_string(-42.0), "-42");
  EXPECT_EQ(Json::number_to_string(0.1), "0.1");
  EXPECT_EQ(Json::number_to_string(1.5), "1.5");
  // 2^53 is the largest double-exact integer; it still prints integrally.
  EXPECT_EQ(Json::number_to_string(9007199254740992.0), "9007199254740992");
  // Non-finite values have no JSON spelling.
  EXPECT_EQ(Json::number_to_string(std::nan("")), "null");
  EXPECT_EQ(Json::number_to_string(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(Json, DumpParseRoundTrip) {
  Json doc = Json::object();
  doc["schema_version"] = 1;
  doc["pi"] = 3.141592653589793;
  doc["name"] = "fig5 — exchanges \"to\" threshold\n";
  doc["flags"] = Json::object();
  doc["flags"]["smoke"] = true;
  doc["flags"]["csv"] = nullptr;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back(0.25);
  arr.push_back("x");
  doc["series"] = std::move(arr);

  for (const int indent : {-1, 0, 2, 4}) {
    const std::string text = doc.dump(indent);
    const Json reparsed = Json::parse(text);
    EXPECT_EQ(reparsed, doc) << "indent=" << indent;
    // Determinism: dumping the reparsed document reproduces the bytes.
    EXPECT_EQ(reparsed.dump(indent), text) << "indent=" << indent;
  }
}

TEST(Json, ParsesEscapesAndUnicode) {
  const Json v = Json::parse(R"("a\tbéA")");
  EXPECT_EQ(v.as_string(), "a\tb\xc3\xa9""A");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)Json::parse(""), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("{"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("[1,]"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("01"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("true false"), std::invalid_argument);
  EXPECT_THROW((void)Json::parse("nul"), std::invalid_argument);
}

TEST(Json, ParseRejectsDuplicateKeys) {
  EXPECT_THROW((void)Json::parse(R"({"a":1,"a":2})"), std::invalid_argument);
}

TEST(Json, TypedAccessorsThrowOnMismatch) {
  const Json v = Json::parse("[1,2]");
  EXPECT_THROW((void)v.as_object(), std::logic_error);
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_EQ(v.as_array().size(), 2u);
}

TEST(Json, FindLocatesMembers) {
  const Json doc = Json::parse(R"({"a":1,"b":{"c":true}})");
  ASSERT_NE(doc.find("b"), nullptr);
  ASSERT_NE(doc.find("b")->find("c"), nullptr);
  EXPECT_TRUE(doc.find("b")->find("c")->as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(Json, PrettyPrintingIsStable) {
  Json doc = Json::object();
  doc["a"] = Json::array();
  doc["a"].push_back(1);
  doc["b"] = Json::object();
  EXPECT_EQ(doc.dump(2), "{\n  \"a\": [\n    1\n  ],\n  \"b\": {}\n}");
}

}  // namespace
