#include "stats/ascii_plot.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dlb::stats {
namespace {

TEST(BarChart, ScalesBarsToMaximum) {
  std::ostringstream out;
  BarChartOptions options;
  options.width = 10;
  bar_chart(out, {0.0, 1.0}, {0.5, 1.0}, options);
  std::istringstream lines(out.str());
  std::string first;
  std::string second;
  std::getline(lines, first);
  std::getline(lines, second);
  EXPECT_NE(first.find("#####"), std::string::npos);
  EXPECT_EQ(first.find("######"), std::string::npos);  // exactly 5
  EXPECT_NE(second.find("##########"), std::string::npos);
}

TEST(BarChart, HandlesAllZeroValues) {
  std::ostringstream out;
  bar_chart(out, {1.0, 2.0}, {0.0, 0.0});
  EXPECT_EQ(out.str().find('#'), std::string::npos);
}

TEST(BarChart, RejectsBadInput) {
  std::ostringstream out;
  EXPECT_THROW(bar_chart(out, {1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(bar_chart(out, {1.0}, {-0.5}), std::invalid_argument);
}

TEST(BarChart, EmptyInputIsSilent) {
  std::ostringstream out;
  bar_chart(out, {}, {});
  EXPECT_TRUE(out.str().empty());
}

TEST(LinePlot, DimensionsMatchOptions) {
  LinePlotOptions options;
  options.width = 20;
  options.height = 5;
  const std::string plot = line_plot_string({1.0, 2.0, 3.0, 2.0, 1.0}, options);
  std::istringstream lines(plot);
  std::string line;
  std::size_t rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    EXPECT_NE(line.find('|'), std::string::npos);
  }
  EXPECT_EQ(rows, 5u);
}

TEST(LinePlot, ExtremesLandOnFirstAndLastRows) {
  LinePlotOptions options;
  options.width = 3;
  options.height = 3;
  options.axis_precision = 0;
  // Monotone decreasing series: first column top row, last column bottom.
  const std::string plot = line_plot_string({10.0, 5.0, 0.0}, options);
  std::istringstream lines(plot);
  std::string top;
  std::string mid;
  std::string bottom;
  std::getline(lines, top);
  std::getline(lines, mid);
  std::getline(lines, bottom);
  EXPECT_NE(top.find('*'), std::string::npos);
  EXPECT_NE(bottom.find('*'), std::string::npos);
  EXPECT_NE(top.find("10"), std::string::npos);   // max label
  EXPECT_NE(bottom.find("0"), std::string::npos);  // min label
}

TEST(LinePlot, ConstantSeriesDoesNotDivideByZero) {
  const std::string plot = line_plot_string({2.0, 2.0, 2.0});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(LinePlot, EmptySeriesYieldsEmptyString) {
  EXPECT_TRUE(line_plot_string({}).empty());
}

TEST(LinePlot, LongSeriesIsDownsampled) {
  std::vector<double> series(10'000);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = static_cast<double>(i);
  }
  LinePlotOptions options;
  options.width = 40;
  options.height = 8;
  const std::string plot = line_plot_string(series, options);
  // One mark per column.
  std::size_t marks = 0;
  for (char c : plot) {
    if (c == '*') ++marks;
  }
  EXPECT_EQ(marks, 40u);
}

TEST(LinePlot, RejectsDegenerateGeometry) {
  LinePlotOptions options;
  options.width = 0;
  EXPECT_THROW(line_plot_string({1.0}, options), std::invalid_argument);
}

}  // namespace
}  // namespace dlb::stats
