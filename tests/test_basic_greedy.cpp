#include "pairwise/basic_greedy.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/generators.hpp"
#include "pairwise/pairwise_optimal.hpp"
#include "stats/rng.hpp"

namespace dlb::pairwise {
namespace {

TEST(BasicGreedy, PoolsBothMachinesJobs) {
  const Instance inst = Instance::identical(3, {1.0, 1.0, 1.0, 1.0});
  Schedule s(inst, Assignment::all_on(4, 0));
  const BasicGreedyKernel kernel;
  EXPECT_TRUE(kernel.balance(s, 0, 1));
  EXPECT_EQ(s.jobs_on(0).size(), 2u);
  EXPECT_EQ(s.jobs_on(1).size(), 2u);
  EXPECT_TRUE(s.jobs_on(2).empty());  // third machine untouched
}

TEST(BasicGreedy, IsIdempotentPerPair) {
  const Instance inst = gen::uniform_unrelated(4, 12, 1.0, 10.0, 31);
  Schedule s(inst, gen::random_assignment(inst, 32));
  const BasicGreedyKernel kernel;
  kernel.balance(s, 1, 2);
  EXPECT_FALSE(kernel.balance(s, 1, 2));  // a second call changes nothing
}

TEST(BasicGreedy, SingleTypeSplitIsOptimal_Lemma3) {
  // Lemma 3: with one job type the pair split is optimal. Check against the
  // exhaustive pair oracle on many random single-type pools.
  const BasicGreedyKernel kernel;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    stats::Rng rng(seed);
    const std::size_t n = 1 + rng.below(12);
    const Cost pa = 1.0 + rng.uniform() * 9.0;   // cost per job on machine a
    const Cost pb = 1.0 + rng.uniform() * 9.0;   // cost per job on machine b
    const Instance inst = Instance::unrelated(
        {std::vector<Cost>(n, pa), std::vector<Cost>(n, pb)});
    Schedule s(inst, Assignment::all_on(n, 0));
    kernel.balance(s, 0, 1);
    std::vector<JobId> pool(n);
    std::iota(pool.begin(), pool.end(), 0);
    const Cost optimal = optimal_pair_makespan(inst, 0, 1, pool);
    EXPECT_NEAR(s.makespan(), optimal, 1e-9)
        << "seed=" << seed << " n=" << n << " pa=" << pa << " pb=" << pb;
  }
}

TEST(BasicGreedy, NeverIncreasesPairMakespanOnSingleType) {
  // With one job type the greedy split is optimal (Lemma 3), hence never
  // worse than the current split. (With mixed job sizes Basic Greedy is a
  // heuristic and *can* increase the pair makespan — see Proposition 2's
  // discussion — so this monotonicity is only asserted for single types.)
  const BasicGreedyKernel kernel;
  for (std::uint64_t seed = 100; seed < 115; ++seed) {
    stats::Rng rng(seed);
    const Cost pa = 1.0 + rng.uniform() * 9.0;
    const Cost pb = 1.0 + rng.uniform() * 9.0;
    const Instance inst = Instance::unrelated(
        {std::vector<Cost>(10, pa), std::vector<Cost>(10, pb)});
    Schedule s(inst, gen::random_assignment(inst, seed + 1));
    const Cost before = s.makespan();
    kernel.balance(s, 0, 1);
    EXPECT_LE(s.makespan(), before + 1e-9);
  }
}

TEST(BasicGreedy, HostKeepsJobOnTies) {
  // Equal costs both sides: Algorithm 2's `<=` sends the first job to the
  // host machine (a).
  const Instance inst = Instance::identical(2, {5.0});
  Schedule s(inst, Assignment::all_on(1, 1));
  const BasicGreedyKernel kernel;
  kernel.balance(s, 0, 1);
  EXPECT_EQ(s.machine_of(0), 0u);
}

TEST(BasicGreedy, EmptyPoolIsNoop) {
  const Instance inst = Instance::identical(3, {1.0});
  Schedule s(inst, Assignment::all_on(1, 2));
  const BasicGreedyKernel kernel;
  EXPECT_FALSE(kernel.balance(s, 0, 1));
}

TEST(BasicGreedySplit, DeterministicFunctionOfPool) {
  const Instance inst = gen::uniform_unrelated(2, 8, 1.0, 10.0, 41);
  std::vector<JobId> pool = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<JobId> to_a1, to_b1, to_a2, to_b2;
  basic_greedy_split(inst, 0, 1, pool, to_a1, to_b1);
  basic_greedy_split(inst, 0, 1, pool, to_a2, to_b2);
  EXPECT_EQ(to_a1, to_a2);
  EXPECT_EQ(to_b1, to_b2);
}

TEST(PairHelpers, PooledJobsIsSortedUnion) {
  const Instance inst = Instance::identical(3, {1.0, 1.0, 1.0, 1.0});
  Schedule s(inst);
  s.assign(2, 0);
  s.assign(0, 1);
  s.assign(3, 1);
  s.assign(1, 2);
  const auto pool = pooled_jobs(s, 0, 1);
  EXPECT_EQ(pool, (std::vector<JobId>{0, 2, 3}));
}

TEST(PairHelpers, ApplySplitReportsChanges) {
  const Instance inst = Instance::identical(2, {1.0, 1.0});
  Schedule s(inst, Assignment::all_on(2, 0));
  EXPECT_FALSE(apply_split(s, 0, 1, {0, 1}, {}));   // already there
  EXPECT_TRUE(apply_split(s, 0, 1, {0}, {1}));      // moves job 1
  EXPECT_EQ(s.machine_of(1), 1u);
}

}  // namespace
}  // namespace dlb::pairwise
