// One test per headline claim of the paper, exercised end-to-end. These
// duplicate some module-level coverage on purpose: the suite documents the
// reproduction status of every numbered statement.

#include <gtest/gtest.h>

#include "centralized/clb2c.hpp"
#include "centralized/exact_bnb.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "dist/convergence.hpp"
#include "dist/dlb2c.hpp"
#include "dist/mjtb.hpp"
#include "dist/ojtb.hpp"
#include "markov/makespan_pdf.hpp"
#include "pairwise/pairwise_optimal.hpp"
#include "ws/work_stealing_sim.hpp"

namespace dlb {
namespace {

TEST(PaperTheorem1, WorkStealingRatioGrowsLinearly) {
  double previous_ratio = 0.0;
  for (const double n : {20.0, 40.0, 80.0, 160.0}) {
    const auto trap = gen::table1_work_stealing_trap(n);
    const auto result = ws::simulate_work_stealing(trap.instance, trap.initial);
    ASSERT_TRUE(result.converged);
    const double ratio = result.final_makespan / trap.optimal_makespan;
    EXPECT_GE(ratio, n / 2.0);
    EXPECT_GT(ratio, previous_ratio);  // strictly growing: unbounded
    previous_ratio = ratio;
  }
}

TEST(PaperProposition2, PairwiseOptimalRatioGrowsLinearly) {
  const pairwise::PairwiseOptimalKernel kernel;
  for (const double n : {10.0, 100.0, 1000.0}) {
    const auto trap = gen::table2_pairwise_trap(n);
    Schedule s(trap.instance, trap.initial);
    EXPECT_TRUE(dist::is_stable(s, kernel));
    EXPECT_DOUBLE_EQ(s.makespan() / trap.optimal_makespan, n);
  }
}

TEST(PaperLemma4, OjtbConvergesToOptimalOnOneJobType) {
  const std::vector<Cost> per_job = {1.0, 2.0, 2.5, 6.0};
  std::vector<std::vector<Cost>> rows;
  for (Cost p : per_job) rows.emplace_back(18, p);
  const Instance inst = Instance::unrelated(std::move(rows));
  const Cost optimal = dist::single_type_optimal_makespan(per_job, 18);

  // Lemma 4 is about the makespan: the process may keep swapping jobs on an
  // equal-load plateau forever, so run until the optimum is reached rather
  // than until a strict fixed point.
  Schedule s(inst, Assignment::all_on(18, 3));
  dist::EngineOptions options;
  options.max_exchanges = 100'000;
  options.stop_threshold = optimal + 1e-9;
  stats::Rng rng(1);
  const auto result = dist::run_ojtb(s, options, rng);
  ASSERT_TRUE(result.reached_threshold);
  EXPECT_NEAR(result.final_makespan, optimal, 1e-9);
}

TEST(PaperTheorem5, MjtbIsAkApproximationAtConvergence) {
  constexpr std::size_t kTypes = 3;
  Instance inst = gen::typed_uniform(3, 9, kTypes, 1.0, 8.0, 5);
  Schedule s(inst, gen::random_assignment(inst, 6));
  dist::EngineOptions options;
  options.max_exchanges = 300'000;
  options.stability_check_interval = 500;
  stats::Rng rng(7);
  const auto result = dist::run_mjtb(s, options, rng);
  ASSERT_TRUE(result.converged);
  const auto exact = centralized::solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  EXPECT_LE(result.final_makespan, kTypes * exact.optimal + 1e-9);
}

TEST(PaperTheorem6, Clb2cIsA2Approximation) {
  // Paper-scale instance where the hypothesis max p <= OPT holds.
  const Instance inst = gen::two_cluster_uniform(64, 32, 768, 1.0, 1000.0, 8);
  const Cost lb = makespan_lower_bound(inst);
  ASSERT_LE(inst.max_cost(), lb);  // hypothesis of the theorem
  const Schedule s = centralized::clb2c_schedule(inst);
  EXPECT_LE(s.makespan(), 2.0 * lb + 1e-6);
}

TEST(PaperTheorem7, StableDlb2cIs2Approximation) {
  // Theorem 7 is conditional on stability, which with several machines per
  // cluster is rarely reached (Proposition 8). Two clusters of one machine
  // each always stabilise — the CLB2C pair split is idempotent — and give a
  // clean testbed for the bound.
  int stable_cases = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Instance inst = gen::two_cluster_uniform(1, 1, 10, 1.0, 5.0, seed);
    Schedule s(inst, gen::random_assignment(inst, seed + 1));
    if (!dist::run_to_stability(s, dist::Dlb2cKernel{}, 150)) continue;
    ++stable_cases;
    const auto exact = centralized::solve_exact(inst);
    ASSERT_TRUE(exact.proven);
    const Cost reference = std::max(exact.optimal, inst.max_cost());
    EXPECT_LE(s.makespan(), 2.0 * reference + 1e-9) << "seed " << seed;
  }
  EXPECT_GE(stable_cases, 5) << "too few instances stabilised to test";
}

TEST(PaperProposition8, Dlb2cNeedNotConverge) {
  const dist::Dlb2cKernel kernel;
  const auto witness = dist::find_nonconvergent_case(
      kernel, 2, 1, 5, 6, /*attempts=*/400, /*seed=*/2015);
  ASSERT_TRUE(witness.has_value());
  const auto reach = dist::explore_reachable(witness->instance,
                                             witness->initial, kernel, 20'000);
  EXPECT_TRUE(reach.certified_nonconvergent());
}

TEST(PaperTheorems9And10, SinkIsUniqueBalancedAndBounded) {
  for (int m : {3, 4, 5, 6}) {
    const auto analysis = markov::analyze_steady_state(m, 4);
    // analyze_steady_state throws if the sink is not unique (Theorem 9) and
    // reports the sink's maximum makespan (Theorem 10's quantity).
    EXPECT_GT(analysis.sink_size, 0u);
    EXPECT_LE(static_cast<double>(analysis.sink_max_makespan),
              analysis.theorem10_bound + 1e-9)
        << "m=" << m;
  }
}

TEST(PaperFigure2Claim, MakespanWithin1500PmaxWithHighProbability) {
  // "In all computed cases, Cmax <= sum/m + 1.5 pmax with very high
  // probability."
  for (int m : {4, 5, 6}) {
    const auto analysis = markov::analyze_steady_state(m, 4);
    EXPECT_GE(analysis.pdf.cdf_normalized(1.5), 0.995) << "m=" << m;
  }
}

}  // namespace
}  // namespace dlb
