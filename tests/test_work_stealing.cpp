#include "ws/work_stealing_sim.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"

namespace dlb::ws {
namespace {

TEST(WorkStealing, SingleMachineRunsSequentially) {
  const Instance inst = Instance::identical(1, {2.0, 3.0, 4.0});
  // A lone machine can never steal but must still finish everything.
  // (Use 2 machines with everything on one to also exercise failed steals.)
  const Instance inst2 = Instance::identical(2, {2.0, 3.0, 4.0});
  const WsResult result =
      simulate_work_stealing(inst2, Assignment::all_on(3, 0));
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.exchanges, 0u);
  (void)inst;
}

TEST(WorkStealing, BalancedStartNeedsNoSteals) {
  const Instance inst = Instance::identical(2, {5.0, 5.0});
  Assignment a(2);
  a.assign(0, 0);
  a.assign(1, 1);
  const WsResult result = simulate_work_stealing(inst, a);
  EXPECT_TRUE(result.converged);
  EXPECT_DOUBLE_EQ(result.final_makespan, 5.0);
  EXPECT_EQ(result.successful_steals, 0u);
}

TEST(WorkStealing, IdleMachineStealsPendingWork) {
  // Machine 0 holds 4 jobs of cost 1; machine 1 holds nothing. With zero
  // steal latency machine 1 steals half at t=0 and they finish in ~2.
  const Instance inst = Instance::identical(2, {1.0, 1.0, 1.0, 1.0});
  WsOptions options;
  options.steal_latency = 0.0;
  options.retry_delay = 0.01;
  const WsResult result =
      simulate_work_stealing(inst, Assignment::all_on(4, 0), options);
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.successful_steals, 1u);
  EXPECT_LE(result.final_makespan, 3.0 + 1e-9);
}

TEST(WorkStealing, CompletesOnRandomHeterogeneousInstances) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const Instance inst = gen::uniform_unrelated(4, 30, 1.0, 10.0, seed);
    WsOptions options;
    options.seed = seed;
    const WsResult result = simulate_work_stealing(
        inst, gen::random_assignment(inst, seed + 7), options);
    EXPECT_TRUE(result.converged);
    // Makespan is at least the best any single machine could need for its
    // heaviest job.
    EXPECT_GT(result.final_makespan, 0.0);
  }
}

TEST(WorkStealing, RejectsIncompleteInitialDistribution) {
  const Instance inst = Instance::identical(2, {1.0, 1.0});
  Assignment partial(2);
  partial.assign(0, 0);
  EXPECT_THROW(simulate_work_stealing(inst, partial), std::invalid_argument);
}

TEST(WorkStealing, RejectsZeroRetryDelay) {
  const Instance inst = Instance::identical(2, {1.0});
  WsOptions options;
  options.retry_delay = 0.0;
  EXPECT_THROW(
      simulate_work_stealing(inst, Assignment::all_on(1, 0), options),
      std::invalid_argument);
}

TEST(WorkStealing, StealLatencyDelaysCompletion) {
  const Instance inst = Instance::identical(2, {1.0, 1.0, 1.0, 1.0});
  WsOptions fast;
  fast.steal_latency = 0.0;
  WsOptions slow;
  slow.steal_latency = 5.0;
  const WsResult quick =
      simulate_work_stealing(inst, Assignment::all_on(4, 0), fast);
  const WsResult delayed =
      simulate_work_stealing(inst, Assignment::all_on(4, 0), slow);
  EXPECT_TRUE(quick.converged);
  EXPECT_TRUE(delayed.converged);
  EXPECT_LE(quick.final_makespan, delayed.final_makespan + 1e-9);
}

TEST(WorkStealing, StealOneTakesExactlyOneJob) {
  const Instance inst = Instance::identical(2, {1.0, 1.0, 1.0, 1.0, 1.0});
  WsOptions options;
  options.steal_amount = StealAmount::kOne;
  options.steal_latency = 0.0;
  const WsResult result =
      simulate_work_stealing(inst, Assignment::all_on(5, 0), options);
  EXPECT_TRUE(result.converged);
  // Steal-one needs more successful steals than steal-half would.
  WsOptions half = options;
  half.steal_amount = StealAmount::kHalf;
  const WsResult half_result =
      simulate_work_stealing(inst, Assignment::all_on(5, 0), half);
  EXPECT_GE(result.successful_steals, half_result.successful_steals);
}

TEST(WorkStealing, MaxPendingVictimAlwaysFindsTheLoadedMachine) {
  // One machine holds everything; the oracle victim policy must succeed on
  // the first attempt even with many machines.
  const Instance inst = Instance::identical(8, std::vector<Cost>(32, 1.0));
  WsOptions options;
  options.victim_policy = VictimPolicy::kMaxPending;
  options.steal_latency = 0.0;
  const WsResult result =
      simulate_work_stealing(inst, Assignment::all_on(32, 0), options);
  EXPECT_TRUE(result.converged);
  // 7 idle machines all target machine 0 immediately: the first wave of
  // attempts is all successful (no empty-victim retries at time zero).
  EXPECT_GE(result.successful_steals, 7u);
  EXPECT_LE(result.final_makespan, 10.0);
}

// ---- Theorem 1: the Table I trap makes work stealing unboundedly bad ----

class Table1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Table1Sweep, FirstStealWaitsUntilNAndMakespanIsAboutN) {
  const double n = GetParam();
  const auto trap = gen::table1_work_stealing_trap(n);
  WsOptions options;
  options.steal_latency = 0.0;
  options.retry_delay = 0.01;
  const WsResult result =
      simulate_work_stealing(trap.instance, trap.initial, options);
  ASSERT_TRUE(result.converged);
  // Every machine is busy until n: no successful steal can happen earlier.
  EXPECT_GE(result.first_successful_steal, n - 1e-9);
  // Work stealing finishes around n + 1 while OPT = 2: unbounded ratio.
  EXPECT_GE(result.final_makespan, n);
  EXPECT_LE(result.final_makespan, n + 2.0);
  EXPECT_GE(result.final_makespan / trap.optimal_makespan, n / 2.0);
}

INSTANTIATE_TEST_SUITE_P(GrowingN, Table1Sweep,
                         ::testing::Values(10.0, 100.0, 1000.0));

}  // namespace
}  // namespace dlb::ws
