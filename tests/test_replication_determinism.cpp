// The contract the bench JSON invariance test rests on: run_replications
// yields bit-identical results whatever the worker count, because every
// replication draws from its own (seed, rep) RNG stream.

#include "parallel/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"

namespace {

std::vector<double> makespans_with_pool(dlb::parallel::ThreadPool* pool) {
  const std::function<double(std::size_t, dlb::stats::Rng&)> body =
      [](std::size_t rep, dlb::stats::Rng& rng) {
        const dlb::Instance inst =
            dlb::gen::two_cluster_uniform(8, 4, 96, 1.0, 1000.0, 77 + rep);
        dlb::Schedule s(inst, dlb::gen::random_assignment(inst, 88 + rep));
        dlb::dist::EngineOptions options;
        options.max_exchanges = 10 * inst.num_machines();
        return dlb::dist::run_dlb2c(s, options, rng).final_makespan;
      };
  return dlb::parallel::run_replications<double>(16, 123, body, pool);
}

TEST(ReplicationDeterminism, SequentialMatchesParallel) {
  const std::vector<double> sequential = makespans_with_pool(nullptr);

  dlb::parallel::ThreadPool pool8(8);
  const std::vector<double> parallel8 = makespans_with_pool(&pool8);

  dlb::parallel::ThreadPool pool3(3);
  const std::vector<double> parallel3 = makespans_with_pool(&pool3);

  // Bit-identical, not approximately equal: each replication's arithmetic
  // is independent of scheduling, so even floating point must agree.
  EXPECT_EQ(sequential, parallel8);
  EXPECT_EQ(sequential, parallel3);
}

TEST(ReplicationDeterminism, RepeatedRunsAgree) {
  dlb::parallel::ThreadPool pool(4);
  EXPECT_EQ(makespans_with_pool(&pool), makespans_with_pool(&pool));
}

TEST(ReplicationDeterminism, StreamsDifferAcrossReps) {
  const std::function<std::uint64_t(std::size_t, dlb::stats::Rng&)> body =
      [](std::size_t, dlb::stats::Rng& rng) { return rng(); };
  const auto draws =
      dlb::parallel::run_replications<std::uint64_t>(8, 99, body, nullptr);
  for (std::size_t i = 0; i < draws.size(); ++i) {
    for (std::size_t j = i + 1; j < draws.size(); ++j) {
      EXPECT_NE(draws[i], draws[j]) << "streams " << i << " and " << j;
    }
  }
}

TEST(ReplicationDeterminism, DefaultPoolResize) {
  dlb::parallel::set_default_pool_threads(2);
  EXPECT_EQ(dlb::parallel::default_pool().num_threads(), 2u);
  const std::vector<double> small =
      makespans_with_pool(&dlb::parallel::default_pool());
  dlb::parallel::set_default_pool_threads(4);
  EXPECT_EQ(dlb::parallel::default_pool().num_threads(), 4u);
  const std::vector<double> large =
      makespans_with_pool(&dlb::parallel::default_pool());
  EXPECT_EQ(small, large);
}

}  // namespace
