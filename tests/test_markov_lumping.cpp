// Cross-validation of the lumped chain: build the RAW machine-labeled
// chain (states = compositions, not partitions) by directly encoding the
// paper's dynamics, compute its stationary distribution, lump it by
// sorting, and compare against our partition-level chain. Agreement proves
// the lumping (and the transition construction) correct.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "markov/makespan_pdf.hpp"
#include "markov/scc.hpp"

namespace dlb::markov {
namespace {

using RawState = std::vector<Load>;

/// Enumerates all compositions of `total` into m non-negative parts.
std::vector<RawState> enumerate_compositions(int m, Load total) {
  std::vector<RawState> states;
  RawState current(m, 0);
  auto recurse = [&](auto&& self, int position, Load remaining) -> void {
    if (position == m - 1) {
      current[position] = remaining;
      states.push_back(current);
      return;
    }
    for (Load v = 0; v <= remaining; ++v) {
      current[position] = v;
      self(self, position + 1, remaining - v);
    }
  };
  recurse(recurse, 0, total);
  return states;
}

/// Raw transition row per the paper's dynamics: uniform unordered machine
/// pair; new imbalance d uniform on the feasible subset of {0..p_max}
/// (parity + non-negativity); the two orientations of the split are equally
/// likely when d > 0.
std::map<RawState, double> raw_transitions(const RawState& state, Load p_max) {
  const int m = static_cast<int>(state.size());
  const double pair_prob = 2.0 / (static_cast<double>(m) * (m - 1));
  std::map<RawState, double> row;
  for (int i = 0; i < m; ++i) {
    for (int j = i + 1; j < m; ++j) {
      const Load total = state[i] + state[j];
      const Load parity = total % 2;
      const Load d_hi = std::min<Load>(p_max, total);
      const int choices = (d_hi - parity) / 2 + 1;
      const double d_prob = pair_prob / choices;
      for (Load d = parity; d <= d_hi; d += 2) {
        RawState next = state;
        if (d == 0) {
          next[i] = next[j] = total / 2;
          row[next] += d_prob;
        } else {
          next[i] = (total + d) / 2;
          next[j] = (total - d) / 2;
          row[next] += d_prob / 2.0;
          next[i] = (total - d) / 2;
          next[j] = (total + d) / 2;
          row[next] += d_prob / 2.0;
        }
      }
    }
  }
  return row;
}

struct LumpingParam {
  int m;
  Load total;
  Load p_max;
};

class LumpingSweep : public ::testing::TestWithParam<LumpingParam> {};

TEST_P(LumpingSweep, RawChainStationaryLumpsToPartitionChain) {
  const auto param = GetParam();
  const auto raw_states = enumerate_compositions(param.m, param.total);
  std::map<RawState, std::size_t> raw_index;
  for (std::size_t s = 0; s < raw_states.size(); ++s) {
    raw_index.emplace(raw_states[s], s);
  }

  // Power iteration on the raw chain, uniform start (the raw chain's sink
  // component is reached from everywhere; mass outside it decays to 0).
  std::vector<double> pi(raw_states.size(),
                         1.0 / static_cast<double>(raw_states.size()));
  std::vector<double> next(pi.size());
  for (int iteration = 0; iteration < 4000; ++iteration) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < raw_states.size(); ++s) {
      if (pi[s] == 0.0) continue;
      for (const auto& [target, p] : raw_transitions(raw_states[s],
                                                     param.p_max)) {
        next[raw_index.at(target)] += pi[s] * p;
      }
    }
    double diff = 0.0;
    for (std::size_t s = 0; s < pi.size(); ++s) {
      diff += std::abs(next[s] - pi[s]);
    }
    pi.swap(next);
    if (diff < 1e-13) break;
  }

  // Lump the raw stationary distribution by sorting each state.
  std::map<std::vector<Load>, double> lumped_from_raw;
  for (std::size_t s = 0; s < raw_states.size(); ++s) {
    std::vector<Load> sorted = raw_states[s];
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    lumped_from_raw[sorted] += pi[s];
  }

  // Our partition-level pipeline.
  const StateSpace space = StateSpace::enumerate(param.m, param.total);
  const TransitionMatrix matrix = TransitionMatrix::build(space, param.p_max);
  const SccResult scc = strongly_connected_components(matrix);
  const auto sink = sink_states(matrix, scc);
  const StationaryResult stationary = stationary_distribution(matrix, sink);
  ASSERT_TRUE(stationary.converged);

  for (StateIndex s = 0; s < space.size(); ++s) {
    const auto it = lumped_from_raw.find(space.loads(s));
    const double raw_mass = it == lumped_from_raw.end() ? 0.0 : it->second;
    EXPECT_NEAR(stationary.pi[s], raw_mass, 1e-6)
        << "state mismatch at partition index " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(SmallChains, LumpingSweep,
                         ::testing::Values(LumpingParam{2, 4, 2},
                                           LumpingParam{3, 6, 2},
                                           LumpingParam{3, 6, 3},
                                           LumpingParam{4, 8, 2},
                                           LumpingParam{3, 9, 4}));

}  // namespace
}  // namespace dlb::markov
