// The lockstep transport runner on the simulated backend: the session
// plan is a pure function of (seed, machines, rounds), repeated runs are
// bitwise identical, and a chaos fault plan perturbs frame timing without
// perturbing the converged assignment — the property the CI differential
// and chaos-smoke gates rely on.

#include "dist/transport_runner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/generators.hpp"
#include "des/engine.hpp"
#include "dist/dlb2c.hpp"
#include "net/fault.hpp"
#include "net/network.hpp"
#include "net/transport.hpp"
#include "stats/rng.hpp"

namespace dlb::dist {
namespace {

struct SimResult {
  std::vector<std::vector<JobId>> jobs;
  std::vector<Cost> loads;
  TransportRunner::Counters counters;
};

SimResult run_sim(const Instance& instance, std::uint64_t seed,
                  std::size_t rounds, const net::FaultPlan* plan) {
  Schedule replica(instance, gen::random_assignment(instance, seed));
  des::Engine engine;
  net::ConstantLatency latency(0.01);
  stats::Rng rng = stats::Rng::stream(seed, 0x7E57);
  net::Network network(engine, latency, rng);
  if (plan != nullptr) network.set_fault_plan(plan);
  net::SimTransport transport(engine, network, instance.num_machines());

  const Dlb2cKernel kernel;
  TransportRunnerOptions options;
  options.kernel = &kernel;
  options.seed = seed;
  options.rounds = rounds;
  options.retry_timeout = 0.5;
  TransportRunner runner(replica, transport, options);
  runner.start();
  runner.run_to_completion();

  SimResult result;
  for (MachineId m = 0; m < instance.num_machines(); ++m) {
    result.jobs.push_back(runner.sorted_jobs(m));
    result.loads.push_back(runner.canonical_load(m));
  }
  result.counters = runner.counters();
  return result;
}

TEST(TransportRunnerPlan, PureAndWellFormed) {
  const std::uint64_t seed = 11;
  const std::size_t machines = 6;
  EXPECT_EQ(TransportRunner::total_sessions(machines, 4), 24u);
  EXPECT_EQ(TransportRunner::total_sessions(1, 4), 0u);
  for (std::uint64_t token = 0; token < 24; ++token) {
    const MachineId initiator =
        TransportRunner::initiator_of(seed, machines, token);
    const MachineId peer =
        TransportRunner::peer_of(seed, machines, token, initiator);
    ASSERT_LT(initiator, machines);
    ASSERT_LT(peer, machines);
    EXPECT_NE(initiator, peer) << "token " << token;
    // Pure: a second evaluation agrees.
    EXPECT_EQ(TransportRunner::initiator_of(seed, machines, token),
              initiator);
    EXPECT_EQ(TransportRunner::peer_of(seed, machines, token, initiator),
              peer);
  }
  // Each round visits every machine exactly once.
  const std::vector<MachineId> order =
      TransportRunner::round_order(seed, machines, 2);
  std::vector<int> seen(machines, 0);
  for (const MachineId m : order) ++seen[m];
  EXPECT_EQ(seen, std::vector<int>(machines, 1));
}

TEST(TransportRunner, RepeatedRunsBitwiseIdentical) {
  const Instance instance =
      gen::two_cluster_uniform(3, 3, 48, 1.0, 100.0, 5);
  const SimResult a = run_sim(instance, 9, 4, nullptr);
  const SimResult b = run_sim(instance, 9, 4, nullptr);
  EXPECT_EQ(a.jobs, b.jobs);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.counters.exchanges, b.counters.exchanges);
  EXPECT_EQ(a.counters.migrations, b.counters.migrations);
}

TEST(TransportRunner, CompletesEveryPlannedSession) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 24, 1.0, 50.0, 2);
  const SimResult result = run_sim(instance, 3, 5, nullptr);
  EXPECT_EQ(result.counters.sessions_initiated, 20u);
  EXPECT_EQ(result.counters.sessions_completed, 20u);
  // Conservation: every job placed exactly once.
  std::vector<int> placed(24, 0);
  for (const auto& row : result.jobs) {
    for (const JobId job : row) ++placed[job];
  }
  EXPECT_EQ(placed, std::vector<int>(24, 1));
}

TEST(TransportRunner, ChaosPerturbsTimingNotOutcome) {
  const Instance instance =
      gen::two_cluster_uniform(3, 3, 60, 1.0, 200.0, 8);
  const SimResult clean = run_sim(instance, 21, 5, nullptr);

  for (const std::uint64_t fault_seed : {101u, 202u, 303u}) {
    net::FaultPlan plan =
        net::fault_plan_by_name("chaos", 0.25, fault_seed);
    const SimResult chaotic = run_sim(instance, 21, 5, &plan);
    EXPECT_EQ(chaotic.jobs, clean.jobs) << "fault seed " << fault_seed;
    EXPECT_EQ(chaotic.loads, clean.loads) << "fault seed " << fault_seed;
    EXPECT_EQ(chaotic.counters.exchanges, clean.counters.exchanges);
    EXPECT_EQ(chaotic.counters.migrations, clean.counters.migrations);
    // The chaos run must not double-commit: each exchange applies once,
    // however many TRANSFER retransmissions the drops forced.
    EXPECT_LE(chaotic.counters.exchanges,
              chaotic.counters.transfers_sent);
  }
}

TEST(TransportRunner, DeadPeerSessionsSkipMovelessly) {
  const Instance instance =
      gen::two_cluster_uniform(2, 2, 24, 1.0, 50.0, 4);
  Schedule replica(instance, gen::random_assignment(instance, 6));
  des::Engine engine;
  net::ConstantLatency latency(0.01);
  stats::Rng rng = stats::Rng::stream(6, 0x7E57);
  net::Network network(engine, latency, rng);
  net::SimTransport transport(engine, network, instance.num_machines());

  const Dlb2cKernel kernel;
  TransportRunnerOptions options;
  options.kernel = &kernel;
  options.seed = 6;
  options.rounds = 3;
  TransportRunner runner(replica, transport, options);
  const std::vector<JobId> dead_row_before = runner.sorted_jobs(3);
  runner.mark_dead(3);
  runner.start();
  runner.run_to_completion();

  EXPECT_TRUE(runner.done());
  // The dead machine neither gained nor lost jobs, and no job was lost
  // overall — its orphans await adoption, exactly what the churn
  // re-dispatch path consumes.
  EXPECT_EQ(runner.sorted_jobs(3), dead_row_before);
  std::vector<int> placed(24, 0);
  for (MachineId m = 0; m < 4; ++m) {
    for (const JobId job : runner.sorted_jobs(m)) ++placed[job];
  }
  EXPECT_EQ(placed, std::vector<int>(24, 1));

  // Adoption moves the orphans onto a live machine.
  runner.adopt(dead_row_before, 0);
  EXPECT_TRUE(runner.sorted_jobs(3).empty());
}

}  // namespace
}  // namespace dlb::dist
