#include "parallel/thread_pool.hpp"
#include "parallel/monte_carlo.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <numeric>

namespace dlb::parallel {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(1);
  pool.wait_idle();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }  // destructor joins
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ParallelFor, CoversTheWholeRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  parallel_for(pool, 0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(MonteCarlo, SequentialAndPooledResultsMatch) {
  const std::function<double(std::size_t, stats::Rng&)> body =
      [](std::size_t rep, stats::Rng& rng) {
        return static_cast<double>(rep) + rng.uniform();
      };
  const auto sequential = run_replications<double>(64, 99, body, nullptr);
  ThreadPool pool(4);
  const auto pooled = run_replications<double>(64, 99, body, &pool);
  ASSERT_EQ(sequential.size(), pooled.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_DOUBLE_EQ(sequential[i], pooled[i]) << i;
  }
}

TEST(MonteCarlo, ReplicationsAreIndependentStreams) {
  const std::function<std::uint64_t(std::size_t, stats::Rng&)> body =
      [](std::size_t, stats::Rng& rng) { return rng(); };
  const auto values = run_replications<std::uint64_t>(32, 7, body);
  // All first draws distinct (collision probability negligible).
  std::vector<std::uint64_t> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
}

TEST(MonteCarlo, DefaultPoolIsReusable) {
  ThreadPool& pool = default_pool();
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 1);
}

}  // namespace
}  // namespace dlb::parallel
