#include "stats/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace dlb::stats {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform(3.0, 8.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 8.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kSamples = 100'000;
  for (int i = 0; i < kSamples; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, BelowIsAlwaysInRange) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(15);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsAreStandard) {
  Rng rng(21);
  constexpr int kSamples = 200'000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sumsq / kSamples, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  constexpr int kSamples = 200'000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, StreamsAreIndependentOfParentUse) {
  // Stream k of seed s must not depend on how other streams were used.
  Rng s3a = Rng::stream(99, 3);
  Rng s5 = Rng::stream(99, 5);
  (void)s5();
  Rng s3b = Rng::stream(99, 3);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(s3a(), s3b());
}

TEST(Rng, StreamsDifferAcrossIndices) {
  Rng a = Rng::stream(1234, 0);
  Rng b = Rng::stream(1234, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(31);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v.begin(), v.end(), rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(33);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v.begin(), v.end(), rng);
  int fixed_points = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 10);  // E[fixed points] = 1
}

TEST(Rng, Splitmix64KnownValues) {
  // Reference values from the canonical splitmix64 implementation.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFULL);
}

class RngSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSweep, BernoulliFrequencyTracksP) {
  Rng rng(GetParam());
  constexpr int kSamples = 50'000;
  for (double p : {0.1, 0.5, 0.9}) {
    int hits = 0;
    for (int i = 0; i < kSamples; ++i) {
      if (rng.bernoulli(p)) ++hits;
    }
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, p, 0.02);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSweep,
                         ::testing::Values(1u, 42u, 1000u, 0xdeadbeefu));

}  // namespace
}  // namespace dlb::stats
