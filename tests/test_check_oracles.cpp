#include "check/oracles.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "centralized/exact_bnb.hpp"
#include "check/shrink.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "dist/convergence.hpp"
#include "pairwise/basic_greedy.hpp"
#include "pairwise/pair_kernel.hpp"

namespace dlb::check {
namespace {

TEST(Report, CollectsNamedFailures) {
  Report report;
  EXPECT_TRUE(report.ok());
  report.fail("some.oracle", "a detail");
  report.fail("other.oracle", "another");
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.failures().size(), 2u);
  EXPECT_EQ(report.failures()[0].oracle, "some.oracle");
  EXPECT_NE(report.to_string().find("other.oracle: another"),
            std::string::npos);
}

TEST(ScheduleStateOracle, AcceptsAConsistentSchedule) {
  const Instance inst = gen::uniform_unrelated(3, 8, 1.0, 10.0, 1);
  Schedule schedule(inst, gen::random_assignment(inst, 2));
  Report report;
  check_schedule_state(schedule, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(ScheduleStateOracle, RejectsAnIncompletePartition) {
  const Instance inst = gen::uniform_unrelated(3, 8, 1.0, 10.0, 1);
  Schedule schedule(inst);  // All jobs unassigned.
  Report report;
  check_schedule_state(schedule, report);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "state.partition");
}

TEST(IoRoundtripOracle, AcceptsEveryRegimeIncludingDegenerates) {
  const Instance cases[] = {
      gen::uniform_unrelated(3, 8, 1.0, 10.0, 3),
      gen::typed_uniform(3, 9, 3, 1.0, 10.0, 4),
      Instance::identical(2, {}),               // Zero jobs.
      Instance::identical(1, {5.0, 2.0}),       // One machine.
  };
  for (const Instance& inst : cases) {
    Report report;
    check_io_roundtrip(inst, gen::random_assignment(inst, 5), report);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

// ----- kernel contract -----

TEST(KernelContractOracle, AcceptsBasicGreedy) {
  const Instance inst = gen::uniform_unrelated(4, 10, 1.0, 10.0, 6);
  Schedule schedule(inst, gen::random_assignment(inst, 7));
  Report report;
  check_kernel_contract(schedule, pairwise::BasicGreedyKernel{}, 0, 3,
                        report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

/// Deliberately broken kernel: shuttles the first pooled job to the other
/// machine every call, so an immediate second application undoes the first
/// — violating the idempotence the stable-state definition rests on.
class BrokenSwapKernel final : public pairwise::PairKernel {
 public:
  bool balance(Schedule& schedule, MachineId a,
               MachineId b) const override {
    const auto pool = pairwise::pooled_jobs(schedule, a, b);
    if (pool.empty()) return false;
    const JobId j = pool.front();
    schedule.move(j, schedule.machine_of(j) == a ? b : a);
    return true;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "broken-swap";
  }
};

/// Deliberately dishonest kernel: balances like Basic Greedy but always
/// reports "nothing changed".
class LyingKernel final : public pairwise::PairKernel {
 public:
  bool balance(Schedule& schedule, MachineId a,
               MachineId b) const override {
    (void)inner_.balance(schedule, a, b);
    return false;
  }
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lying";
  }

 private:
  pairwise::BasicGreedyKernel inner_;
};

TEST(KernelContractOracle, CatchesANonIdempotentKernel) {
  const Instance inst = gen::identical_uniform(3, 8, 1.0, 10.0, 8);
  Schedule schedule(inst, Assignment::all_on(8, 0));
  Report report;
  check_kernel_contract(schedule, BrokenSwapKernel{}, 0, 1, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "kernel.idempotent");
}

TEST(KernelContractOracle, CatchesADishonestChangedFlag) {
  const Instance inst = gen::identical_uniform(3, 8, 1.0, 10.0, 9);
  Schedule schedule(inst, Assignment::all_on(8, 0));
  Report report;
  check_kernel_contract(schedule, LyingKernel{}, 0, 1, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "kernel.honesty");
}

TEST(KernelContractOracle, BrokenKernelShrinksToATinyReproducer) {
  // The acceptance path of the whole harness: seed a sizable random case,
  // let the oracle reject the mutant kernel, and greedily shrink to a
  // reproducer a human can eyeball (<= 5 jobs).
  const BrokenSwapKernel broken;
  const Property property = [&](const Instance& inst,
                                const Assignment& initial) {
    if (inst.num_machines() < 2) {
      throw std::invalid_argument("kernel contract needs a pair");
    }
    Schedule schedule(inst, initial);
    Report report;
    check_kernel_contract(schedule, broken, 0, 1, report);
    return report.ok();
  };

  const Instance inst = gen::uniform_unrelated(5, 12, 1.0, 100.0, 10);
  const Assignment initial = gen::random_assignment(inst, 11);
  ASSERT_FALSE(property(inst, initial)) << "mutant not caught";

  const ShrinkResult shrunk = shrink(inst, initial, property);
  EXPECT_FALSE(property(shrunk.instance, shrunk.initial));
  EXPECT_LE(shrunk.instance.num_jobs(), 5u);
  EXPECT_LE(shrunk.instance.num_machines(), 2u);
}

// ----- bounds and theorems -----

TEST(BoundOracles, LowerBoundsNeverExceedTheExactOptimum) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Instance inst = gen::two_cluster_uniform(2, 2, 6, 1.0, 20.0, seed);
    const centralized::ExactResult exact = centralized::solve_exact(inst);
    ASSERT_TRUE(exact.proven);
    Report report;
    check_lower_bounds_vs_opt(inst, exact.optimal, report);
    check_lower_bound_soundness(inst, exact.optimal, report);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(BoundOracles, RejectAnImpossiblyGoodMakespan) {
  const Instance inst = gen::identical_uniform(2, 8, 5.0, 10.0, 12);
  Report report;
  // Claiming a feasible makespan of ~zero must trip the soundness oracle.
  check_lower_bound_soundness(inst, 1e-6, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "bound.soundness");
}

TEST(TheoremOracles, Clb2cRespectsTheoremSix) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const Instance inst = gen::two_cluster_uniform(2, 2, 7, 1.0, 10.0, seed);
    const centralized::ExactResult exact = centralized::solve_exact(inst);
    ASSERT_TRUE(exact.proven);
    Report report;
    check_clb2c_two_approx(inst, exact.optimal, report);
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(TheoremOracles, StableSingleTypeIsOptimal) {
  const Instance inst = Instance::identical(3, std::vector<Cost>(9, 2.0));
  Schedule stable(inst, Assignment::all_on(9, 0));
  ASSERT_TRUE(
      dist::run_to_stability(stable, pairwise::BasicGreedyKernel{}, 50));
  Report report;
  check_stable_single_type_optimal(stable, report);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(TheoremOracles, SingleTypeOracleRejectsAnImbalancedSchedule) {
  const Instance inst = Instance::identical(3, std::vector<Cost>(9, 2.0));
  // All nine jobs on one machine: makespan 18 vs the optimum 6.
  Schedule lopsided(inst, Assignment::all_on(9, 0));
  Report report;
  check_stable_single_type_optimal(lopsided, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "lemma4.single_type");
}

// ----- run result consistency -----

TEST(RunResultOracle, RejectsANonMonotoneBestMakespan) {
  const Instance inst = gen::identical_uniform(3, 6, 1.0, 10.0, 13);
  dist::RunResult result;
  // Well above any lower bound of the instance, so only the monotonicity
  // oracle can fire.
  result.initial_makespan = 100.0;
  result.final_makespan = 80.0;
  result.best_makespan = 120.0;  // Worse than initial: impossible.
  Report report;
  check_run_result(result, inst, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "run.best_monotone");
}

TEST(ConvergenceOracle, RejectsAFalseConvergenceClaim) {
  const Instance inst = Instance::identical(2, {4.0, 4.0});
  Schedule unstable(inst, Assignment::all_on(2, 0));
  dist::RunResult result;
  result.converged = true;  // A lie: one exchange still rebalances.
  Report report;
  check_converged_is_stable(result, unstable,
                            pairwise::BasicGreedyKernel{}, report);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures().front().oracle, "convergence.detector");
}

}  // namespace
}  // namespace dlb::check
