// Coverage for the heterogeneous *related* machine regime (Section II's
// middle case): every algorithm that claims to support it must behave
// sensibly when machines differ only by speed.

#include <gtest/gtest.h>

#include "centralized/ect.hpp"
#include "centralized/exact_bnb.hpp"
#include "centralized/list_scheduling.hpp"
#include "centralized/local_search.hpp"
#include "centralized/lpt.hpp"
#include "centralized/two_choices.hpp"
#include "core/generators.hpp"
#include "core/lower_bounds.hpp"
#include "core/validation.hpp"
#include "dist/ojtb.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb {
namespace {

TEST(RelatedMachines, CostsScaleInverselyWithSpeed) {
  const Instance inst = Instance::related({1.0, 2.0, 4.0}, {8.0});
  EXPECT_DOUBLE_EQ(inst.cost(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(inst.cost(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(inst.cost(2, 0), 2.0);
}

TEST(RelatedMachines, EctPrefersFastMachinesWhenEmpty) {
  const Instance inst = Instance::related({1.0, 4.0}, {8.0, 8.0, 8.0});
  const Schedule s = centralized::ect_schedule(inst);
  // Fast machine (speed 4) takes jobs until its completion time catches up:
  // costs are 2 there vs 8 on the slow one. Jobs: m1 (2), m1 (4), m1 (6).
  EXPECT_EQ(s.jobs_on(1).size(), 3u);
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(RelatedMachines, ListSchedulingIgnoresSpeedAndPaysForIt) {
  // Least-loaded-first places the first job on machine 0 regardless of its
  // speed; ECT respects the speeds. This is exactly why the paper treats
  // submission-time balancing as insufficient on heterogeneous systems.
  const Instance inst = Instance::related({1.0, 10.0}, {10.0});
  const Schedule list = centralized::list_schedule(inst);
  const Schedule ect = centralized::ect_schedule(inst);
  EXPECT_DOUBLE_EQ(list.makespan(), 10.0);  // on the slow machine
  EXPECT_DOUBLE_EQ(ect.makespan(), 1.0);    // on the fast one
}

class RelatedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelatedSweep, EctWithinTwoOfExactOpt) {
  const Instance inst =
      gen::related_uniform(3, 8, 1.0, 10.0, 1.0, 4.0, GetParam());
  const auto exact = centralized::solve_exact(inst);
  ASSERT_TRUE(exact.proven);
  const Schedule s = centralized::ect_schedule(inst);
  // ECT = List Scheduling in completion-time order: 2-approx on related
  // machines (Graham's argument carries over with speeds).
  EXPECT_LE(s.makespan(), 2.0 * exact.optimal + 1e-9);
}

TEST_P(RelatedSweep, LocalSearchTightensHeuristics) {
  const Instance inst =
      gen::related_uniform(4, 16, 1.0, 20.0, 1.0, 3.0, GetParam());
  Schedule s = centralized::lpt_schedule(inst);
  const Cost before = s.makespan();
  centralized::local_search_improve(s);
  EXPECT_LE(s.makespan(), before + 1e-9);
  EXPECT_GE(s.makespan(), makespan_lower_bound(inst) - 1e-9);
  EXPECT_TRUE(is_complete_partition(s));
}

TEST_P(RelatedSweep, OjtbOptimalOnRelatedSingleType) {
  // One job type on related machines: per-machine cost is base / speed.
  stats::Rng setup(GetParam());
  const std::size_t m = 2 + setup.below(3);
  const std::size_t n = 6 + setup.below(12);
  std::vector<double> speeds(m);
  std::vector<Cost> per_job(m);
  const Cost base = 4.0;
  for (std::size_t i = 0; i < m; ++i) {
    speeds[i] = 0.5 + setup.uniform() * 3.5;
    per_job[i] = base / speeds[i];
  }
  const Instance inst =
      Instance::related(std::move(speeds), std::vector<Cost>(n, base));

  Schedule s(inst, gen::random_assignment(inst, GetParam() + 10));
  dist::EngineOptions options;
  options.max_exchanges = 100'000;
  options.stop_threshold =
      dist::single_type_optimal_makespan(per_job, n) + 1e-9;
  stats::Rng rng(GetParam() + 20);
  const dist::RunResult result = dist::run_ojtb(s, options, rng);
  EXPECT_TRUE(result.reached_threshold)
      << "OJTB failed to reach the related-machine optimum";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelatedSweep,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(RelatedMachines, TwoChoicesBeatsOneChoiceOnRelated) {
  const Instance inst =
      gen::related_uniform(12, 120, 1.0, 10.0, 1.0, 4.0, 9);
  double d1 = 0.0;
  double d2 = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    stats::Rng r1 = stats::Rng::stream(100, seed);
    stats::Rng r2 = stats::Rng::stream(200, seed);
    d1 += centralized::two_choices_schedule(inst, 1, r1).makespan();
    d2 += centralized::two_choices_schedule(inst, 2, r2).makespan();
  }
  EXPECT_LT(d2, d1);
}

}  // namespace
}  // namespace dlb
