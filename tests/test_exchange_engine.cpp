#include "dist/exchange_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/generators.hpp"
#include "pairwise/basic_greedy.hpp"
#include "pairwise/pairwise_optimal.hpp"

namespace dlb::dist {
namespace {

EngineOptions capped(std::size_t exchanges) {
  EngineOptions options;
  options.max_exchanges = exchanges;
  return options;
}

TEST(ExchangeEngine, RespectsExchangeCap) {
  const Instance inst = gen::identical_uniform(4, 20, 1.0, 10.0, 1);
  Schedule s(inst, gen::random_assignment(inst, 2));
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(3);
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, capped(17), rng);
  EXPECT_EQ(result.exchanges, 17u);
}

TEST(ExchangeEngine, TraceRecordsEveryExchange) {
  const Instance inst = gen::identical_uniform(4, 20, 1.0, 10.0, 4);
  Schedule s(inst, gen::random_assignment(inst, 5));
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(6);
  EngineOptions options = capped(25);
  options.record_trace = true;
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, options, rng);
  ASSERT_EQ(result.makespan_trace.size(), 25u);
  EXPECT_DOUBLE_EQ(result.makespan_trace.back(), result.final_makespan);
  // best_makespan is the running minimum over the initial value + trace.
  Cost best = result.initial_makespan;
  for (const Cost c : result.makespan_trace) best = std::min(best, c);
  EXPECT_DOUBLE_EQ(result.best_makespan, best);
}

TEST(ExchangeEngine, ThresholdStopsEarly) {
  const Instance inst = gen::identical_uniform(8, 80, 1.0, 10.0, 7);
  Schedule s(inst, Assignment::all_on(80, 0));
  const Cost initial = s.makespan();
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(8);
  EngineOptions options = capped(100'000);
  options.stop_threshold = initial / 2.0;
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, options, rng);
  EXPECT_TRUE(result.reached_threshold);
  EXPECT_LE(result.final_makespan, initial / 2.0);
  EXPECT_EQ(result.exchanges_to_threshold, result.exchanges);
}

TEST(ExchangeEngine, ThresholdAlreadyMetMeansZeroExchanges) {
  const Instance inst = gen::identical_uniform(4, 8, 1.0, 2.0, 9);
  Schedule s(inst, gen::random_assignment(inst, 10));
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(11);
  EngineOptions options = capped(100);
  options.stop_threshold = s.makespan() * 2.0;
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, options, rng);
  EXPECT_TRUE(result.reached_threshold);
  EXPECT_EQ(result.exchanges, 0u);
}

TEST(ExchangeEngine, StabilityCheckCertifiesConvergence) {
  // Single job type: OJTB provably converges (Lemma 4), so the stability
  // check must fire well before the cap.
  const Instance inst = Instance::identical(3, std::vector<Cost>(9, 2.0));
  Schedule s(inst, gen::random_assignment(inst, 13));
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(14);
  EngineOptions options = capped(100'000);
  options.stability_check_interval = 50;
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, options, rng);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.exchanges, 100'000u);
}

TEST(ExchangeEngine, DeterministicGivenSeed) {
  const Instance inst = gen::identical_uniform(5, 30, 1.0, 10.0, 15);
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;

  Schedule s1(inst, gen::random_assignment(inst, 16));
  Schedule s2(inst, gen::random_assignment(inst, 16));
  stats::Rng rng1(17);
  stats::Rng rng2(17);
  const RunResult r1 =
      ExchangeEngine(kernel, selector).run(s1, capped(200), rng1);
  const RunResult r2 =
      ExchangeEngine(kernel, selector).run(s2, capped(200), rng2);
  EXPECT_EQ(s1.assignment(), s2.assignment());
  EXPECT_DOUBLE_EQ(r1.final_makespan, r2.final_makespan);
  EXPECT_EQ(r1.changed_exchanges, r2.changed_exchanges);
}

TEST(ExchangeEngine, RoundRobinTouchesEveryInitiatorPerRound) {
  // With the round-robin policy and m machines, after exactly m exchanges
  // every machine has initiated exactly once. We verify via a counting
  // kernel (a PairKernel that never changes the schedule).
  class CountingKernel final : public pairwise::PairKernel {
   public:
    bool balance(Schedule&, MachineId a, MachineId) const override {
      ++counts[a];
      return false;
    }
    std::string_view name() const noexcept override { return "count"; }
    mutable std::vector<int> counts = std::vector<int>(6, 0);
  };
  const Instance inst = gen::identical_uniform(6, 6, 1.0, 2.0, 18);
  Schedule s(inst, gen::random_assignment(inst, 19));
  CountingKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(20);
  ExchangeEngine(kernel, selector).run(s, capped(12), rng);
  for (int c : kernel.counts) EXPECT_EQ(c, 2);  // two full rounds
}

TEST(ExchangeEngine, UniformRandomInitiatorPolicyWorksToo) {
  const Instance inst = gen::identical_uniform(5, 30, 1.0, 10.0, 21);
  Schedule s(inst, Assignment::all_on(30, 0));
  const Cost initial = s.makespan();
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(22);
  EngineOptions options = capped(200);
  options.initiator = InitiatorPolicy::kUniformRandom;
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, options, rng);
  EXPECT_LT(result.final_makespan, initial);
  EXPECT_EQ(result.exchanges, 200u);
}

TEST(ExchangeEngine, ReportsMigrations) {
  const Instance inst = gen::identical_uniform(4, 24, 1.0, 10.0, 23);
  Schedule s(inst, Assignment::all_on(24, 0));
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(24);
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, capped(100), rng);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_EQ(result.migrations, s.migrations());
}

// ----- no-op paths -----
//
// When no exchange can improve anything, the kernels must take the no-op
// path: not merely "end near where they started" but leave the LoadTable
// bitwise untouched — a remove-then-re-add of the same job would
// accumulate floating-point drift that the exactly-zero checks below
// would catch.

std::vector<Cost> loads_of(const Schedule& s) {
  std::vector<Cost> loads(s.num_machines());
  for (MachineId i = 0; i < s.num_machines(); ++i) loads[i] = s.load(i);
  return loads;
}

TEST(ExchangeEngine, EqualLoadsAreABitwiseNoOp) {
  // 4 identical machines, one job of cost 2 each: perfectly balanced.
  const Instance inst = Instance::identical(4, {2.0, 2.0, 2.0, 2.0});
  Schedule s(inst);
  for (JobId j = 0; j < 4; ++j) s.assign(j, j);
  const std::vector<Cost> before = loads_of(s);
  const pairwise::BasicGreedyKernel kernel;
  const UniformPeerSelector selector;
  stats::Rng rng(25);
  const RunResult result =
      ExchangeEngine(kernel, selector).run(s, capped(50), rng);
  EXPECT_EQ(result.migrations, 0u);
  EXPECT_EQ(result.changed_exchanges, 0u);
  const std::vector<Cost> after = loads_of(s);
  for (MachineId i = 0; i < 4; ++i) {
    EXPECT_EQ(after[i], before[i]);  // Exact, not approximate.
  }
}

TEST(ExchangeEngine, SingleJobMachinesAreABitwiseNoOp) {
  // One job per machine, each strictly cheapest on its host (no ties, so
  // Basic Greedy's tie-to-initiator rule never fires): every ordered pair
  // must refuse to touch the schedule.
  const Instance inst({{1.0, 9.0, 9.0}, {9.0, 1.0, 9.0}, {9.0, 9.0, 1.0}},
                      {0, 1, 2}, {1.0, 1.0, 1.0});
  Schedule s(inst);
  for (JobId j = 0; j < 3; ++j) s.assign(j, j);
  const std::vector<Cost> before = loads_of(s);
  const pairwise::BasicGreedyKernel greedy;
  const pairwise::PairwiseOptimalKernel optimal;
  for (const pairwise::PairKernel* kernel :
       {static_cast<const pairwise::PairKernel*>(&greedy),
        static_cast<const pairwise::PairKernel*>(&optimal)}) {
    for (MachineId a = 0; a < 3; ++a) {
      for (MachineId b = 0; b < 3; ++b) {
        if (a == b) continue;
        EXPECT_FALSE(kernel->balance(s, a, b)) << kernel->name();
      }
    }
    const std::vector<Cost> after = loads_of(s);
    for (MachineId i = 0; i < 3; ++i) {
      EXPECT_EQ(after[i], before[i]) << kernel->name();
    }
  }
  EXPECT_EQ(s.migrations(), 0u);
}

TEST(ExchangeEngine, NormalizedThresholdTime) {
  RunResult result;
  result.reached_threshold = true;
  result.exchanges_to_threshold = 96;
  EXPECT_DOUBLE_EQ(result.normalized_threshold_time(32), 3.0);
}

}  // namespace
}  // namespace dlb::dist
