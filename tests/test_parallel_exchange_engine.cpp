#include "dist/parallel_exchange_engine.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/generators.hpp"
#include "core/validation.hpp"
#include "dist/selector_registry.hpp"
#include "obs/obs.hpp"
#include "pairwise/kernel_registry.hpp"
#include "parallel/thread_pool.hpp"

namespace dlb::dist {
namespace {

const pairwise::PairKernel& greedy() {
  return pairwise::kernel_registry().get("basic-greedy");
}

const PeerSelector& uniform() { return selector_registry().get("uniform"); }

ParallelEngineOptions capped(std::size_t exchanges) {
  ParallelEngineOptions options;
  options.max_exchanges = exchanges;
  return options;
}

TEST(ParallelExchangeEngine, ReducesMakespanAndRespectsCap) {
  const Instance inst = gen::identical_uniform(8, 80, 1.0, 10.0, 1);
  Schedule s(inst, Assignment::all_on(80, 0));
  const Cost initial = s.makespan();
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, capped(64), 2);
  EXPECT_EQ(result.exchanges, 64u);
  EXPECT_LT(result.final_makespan, initial);
  EXPECT_DOUBLE_EQ(result.initial_makespan, initial);
  EXPECT_LE(result.best_makespan, result.final_makespan);
  EXPECT_GT(result.epochs, 0u);
  EXPECT_TRUE(is_complete_partition(s));
  EXPECT_TRUE(s.check_consistency());
}

// The determinism contract of docs/parallelism.md: schedule, RunReport,
// obs counters and trace bytes must be bitwise identical at any thread
// count, including no pool at all.
TEST(ParallelExchangeEngine, ThreadCountInvariance) {
  const Instance inst = gen::two_cluster_uniform(12, 6, 180, 1.0, 100.0, 3);

  struct Run {
    Schedule schedule;
    ParallelRunResult result;
    obs::Metrics metrics;
    obs::Tracer tracer;
    explicit Run(const Instance& instance)
        : schedule(instance, gen::random_assignment(instance, 4)) {}
  };
  Run inline_run(inst);
  Run pooled_run(inst);

  const auto go = [](Run& run, parallel::ThreadPool* pool) {
    ParallelEngineOptions options = capped(500);
    options.record_trace = true;
    options.pool = pool;
    const obs::Context obs{&run.metrics, &run.tracer};
    options.obs = &obs;
    run.result = ParallelExchangeEngine(greedy(), uniform())
                     .run(run.schedule, options, 5);
  };
  go(inline_run, nullptr);
  parallel::ThreadPool pool(4);
  go(pooled_run, &pool);

  EXPECT_EQ(inline_run.schedule.assignment(), pooled_run.schedule.assignment());
  const ParallelRunResult& a = inline_run.result;
  const ParallelRunResult& b = pooled_run.result;
  EXPECT_EQ(a.to_json().dump(), b.to_json().dump());
  EXPECT_EQ(a.changed_exchanges, b.changed_exchanges);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.conflicts, b.conflicts);
  EXPECT_EQ(a.peer_retries, b.peer_retries);
  ASSERT_EQ(a.epoch_trace.size(), b.epoch_trace.size());
  for (std::size_t e = 0; e < a.epoch_trace.size(); ++e) {
    EXPECT_EQ(a.epoch_trace[e].makespan, b.epoch_trace[e].makespan);
    EXPECT_EQ(a.epoch_trace[e].sessions, b.epoch_trace[e].sessions);
    EXPECT_EQ(a.epoch_trace[e].migrations, b.epoch_trace[e].migrations);
  }
  for (const char* name : {"parexchange.sessions", "parexchange.conflicts",
                           "parexchange.retries", "parexchange.epochs"}) {
    EXPECT_EQ(inline_run.metrics.counter(name).value(),
              pooled_run.metrics.counter(name).value())
        << name;
  }
  // Trace bytes, not just event counts: order, timestamps and args all
  // come from the sequential commit phase.
  EXPECT_EQ(inline_run.tracer.to_chrome_json().dump(),
            pooled_run.tracer.to_chrome_json().dump());
}

TEST(ParallelExchangeEngine, DeterministicReplay) {
  const Instance inst = gen::identical_uniform(6, 48, 1.0, 10.0, 6);
  Schedule s1(inst, gen::random_assignment(inst, 7));
  Schedule s2(inst, gen::random_assignment(inst, 7));
  const ParallelExchangeEngine engine(greedy(), uniform());
  const ParallelRunResult r1 = engine.run(s1, capped(200), 8);
  const ParallelRunResult r2 = engine.run(s2, capped(200), 8);
  EXPECT_EQ(s1.assignment(), s2.assignment());
  EXPECT_EQ(r1.to_json().dump(), r2.to_json().dump());
  EXPECT_EQ(r1.changed_exchanges, r2.changed_exchanges);
  EXPECT_EQ(r1.conflicts, r2.conflicts);
}

TEST(ParallelExchangeEngine, ThresholdStopsAtEpochBoundary) {
  const Instance inst = gen::identical_uniform(8, 80, 1.0, 10.0, 9);
  Schedule s(inst, Assignment::all_on(80, 0));
  const Cost initial = s.makespan();
  ParallelEngineOptions options = capped(100'000);
  options.stop_threshold = initial / 2.0;
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, options, 10);
  EXPECT_TRUE(result.reached_threshold);
  EXPECT_LE(result.final_makespan, initial / 2.0);
  EXPECT_EQ(result.exchanges_to_threshold, result.exchanges);
  // The threshold is only evaluated after a full epoch commits.
  EXPECT_GE(result.epochs, 1u);
}

TEST(ParallelExchangeEngine, ThresholdAlreadyMetMeansZeroExchanges) {
  const Instance inst = gen::identical_uniform(4, 8, 1.0, 2.0, 11);
  Schedule s(inst, gen::random_assignment(inst, 12));
  ParallelEngineOptions options = capped(100);
  options.stop_threshold = s.makespan() * 2.0;
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, options, 13);
  EXPECT_TRUE(result.reached_threshold);
  EXPECT_EQ(result.exchanges, 0u);
  EXPECT_EQ(result.epochs, 0u);
}

TEST(ParallelExchangeEngine, StabilityCheckCertifiesConvergence) {
  // Single job type: the greedy kernel provably converges (Lemma 4), so
  // the stability certificate must fire well before the cap.
  const Instance inst = Instance::identical(4, std::vector<Cost>(16, 2.0));
  Schedule s(inst, gen::random_assignment(inst, 14));
  ParallelEngineOptions options = capped(100'000);
  options.stability_check_interval = 25;
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, options, 15);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.exchanges, 100'000u);
}

TEST(ParallelExchangeEngine, ReportsMigrationsDelta) {
  const Instance inst = gen::identical_uniform(4, 24, 1.0, 10.0, 16);
  Schedule s(inst, Assignment::all_on(24, 0));
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, capped(100), 17);
  EXPECT_GT(result.migrations, 0u);
  EXPECT_EQ(result.migrations, s.migrations());
}

TEST(ParallelExchangeEngine, EpochTraceEndsAtFinalMakespan) {
  const Instance inst = gen::identical_uniform(6, 60, 1.0, 10.0, 18);
  Schedule s(inst, Assignment::all_on(60, 0));
  ParallelEngineOptions options = capped(90);
  options.record_trace = true;
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, options, 19);
  ASSERT_EQ(result.epoch_trace.size(), result.epochs);
  EXPECT_DOUBLE_EQ(result.epoch_trace.back().makespan, result.final_makespan);
  EXPECT_EQ(result.epoch_trace.back().migrations, result.migrations);
  std::uint64_t sessions = 0;
  for (const EpochTracePoint& point : result.epoch_trace) {
    sessions += point.sessions;
  }
  EXPECT_EQ(sessions, result.exchanges);
}

TEST(ParallelExchangeEngine, SessionsPerEpochBoundsBatches) {
  const Instance inst = gen::identical_uniform(10, 100, 1.0, 10.0, 20);
  Schedule s(inst, Assignment::all_on(100, 0));
  ParallelEngineOptions options = capped(40);
  options.sessions_per_epoch = 2;
  options.record_trace = true;
  const ParallelRunResult result =
      ParallelExchangeEngine(greedy(), uniform()).run(s, options, 21);
  for (const EpochTracePoint& point : result.epoch_trace) {
    EXPECT_LE(point.sessions, 2u);
  }
  EXPECT_GE(result.epochs, 20u);
}

TEST(ParallelExchangeEngine, RejectsDegenerateInputs) {
  const Instance one = gen::identical_uniform(1, 4, 1.0, 2.0, 22);
  Schedule s(one, Assignment::all_on(4, 0));
  const ParallelExchangeEngine engine(greedy(), uniform());
  EXPECT_THROW((void)engine.run(s, capped(10), 23), std::invalid_argument);

  const Instance two = gen::identical_uniform(4, 8, 1.0, 2.0, 24);
  Schedule s2(two, gen::random_assignment(two, 25));
  ParallelEngineOptions options = capped(10);
  options.stability_check_interval = 0;
  EXPECT_THROW((void)engine.run(s2, options, 26), std::invalid_argument);
}

}  // namespace
}  // namespace dlb::dist
