#include "check/shrink.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/generators.hpp"

namespace dlb::check {
namespace {

TEST(Shrink, MinimizesJobCountToTheFailureBoundary) {
  // Property fails whenever >= 3 jobs exist: greedy job dropping must stop
  // at exactly 3 (dropping a 3rd would make the case pass).
  const Property property = [](const Instance& inst, const Assignment&) {
    return inst.num_jobs() < 3;
  };
  const Instance inst = gen::uniform_unrelated(4, 12, 1.0, 100.0, 1);
  const Assignment initial = gen::random_assignment(inst, 2);
  ASSERT_FALSE(property(inst, initial));

  const ShrinkResult result = shrink(inst, initial, property);
  EXPECT_EQ(result.instance.num_jobs(), 3u);
  EXPECT_FALSE(property(result.instance, result.initial));
  EXPECT_GT(result.rounds, 0u);
}

TEST(Shrink, MinimizesMachinesAndReassignsTheirJobs) {
  const Property property = [](const Instance& inst, const Assignment&) {
    return inst.num_machines() < 2;
  };
  const Instance inst = gen::identical_uniform(6, 8, 1.0, 10.0, 3);
  const Assignment initial = gen::random_assignment(inst, 4);

  const ShrinkResult result = shrink(inst, initial, property);
  EXPECT_EQ(result.instance.num_machines(), 2u);
  // Every surviving job is still validly placed on a surviving machine.
  for (JobId j = 0; j < result.initial.num_jobs(); ++j) {
    ASSERT_TRUE(result.initial.is_assigned(j));
    EXPECT_LT(result.initial.machine_of(j),
              result.instance.num_machines());
  }
}

TEST(Shrink, SimplifiesCostsWhenTheFailureSurvives) {
  // Failure independent of the costs: the cost-simplification candidates
  // must flatten everything to 1.
  const Property property = [](const Instance&, const Assignment&) {
    return false;  // Always failing.
  };
  const Instance inst = gen::uniform_unrelated(3, 6, 1.5, 99.5, 5);
  const ShrinkResult result =
      shrink(inst, gen::random_assignment(inst, 6), property);
  // Fully minimized: no jobs left, costs trivialized along the way.
  EXPECT_EQ(result.instance.num_jobs(), 0u);
  EXPECT_EQ(result.instance.num_machines(), 1u);
}

TEST(Shrink, AThrowingPropertyMarksCandidatesInvalidNotFailing) {
  // The property requires >= 2 machines (throws below); failure needs
  // >= 4 jobs. The shrinker must respect the precondition and never
  // return a 1-machine case.
  const Property property = [](const Instance& inst, const Assignment&) {
    if (inst.num_machines() < 2) throw std::invalid_argument("need pair");
    return inst.num_jobs() < 4;
  };
  const Instance inst = gen::identical_uniform(5, 10, 1.0, 10.0, 7);
  const ShrinkResult result =
      shrink(inst, gen::random_assignment(inst, 8), property);
  EXPECT_EQ(result.instance.num_machines(), 2u);
  EXPECT_EQ(result.instance.num_jobs(), 4u);
}

TEST(Shrink, RespectsTheCandidateBudget) {
  const Property property = [](const Instance&, const Assignment&) {
    return false;
  };
  const Instance inst = gen::uniform_unrelated(4, 12, 1.0, 100.0, 9);
  const ShrinkResult result =
      shrink(inst, gen::random_assignment(inst, 10), property,
             /*max_candidates=*/5);
  EXPECT_LE(result.candidates, 5u);
}

TEST(Shrink, KeepsJobTypesMeaningfulOnTypedInstances) {
  const Property property = [](const Instance& inst, const Assignment&) {
    return inst.num_jobs() < 2;
  };
  const Instance inst = gen::typed_uniform(3, 9, 3, 1.0, 10.0, 11);
  ASSERT_TRUE(inst.has_job_types());
  const ShrinkResult result =
      shrink(inst, gen::random_assignment(inst, 12), property);
  EXPECT_EQ(result.instance.num_jobs(), 2u);
  EXPECT_TRUE(result.instance.has_job_types());
}

}  // namespace
}  // namespace dlb::check
