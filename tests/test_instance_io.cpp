#include "core/instance_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/generators.hpp"
#include "stats/rng.hpp"

namespace dlb::io {
namespace {

void expect_instances_equal(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_machines(), b.num_machines());
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  ASSERT_EQ(a.num_groups(), b.num_groups());
  for (MachineId i = 0; i < a.num_machines(); ++i) {
    EXPECT_EQ(a.group_of(i), b.group_of(i));
    EXPECT_DOUBLE_EQ(a.scale(i), b.scale(i));
    for (JobId j = 0; j < a.num_jobs(); ++j) {
      EXPECT_DOUBLE_EQ(a.cost(i, j), b.cost(i, j));
    }
  }
  ASSERT_EQ(a.has_job_types(), b.has_job_types());
  if (a.has_job_types()) {
    ASSERT_EQ(a.num_job_types(), b.num_job_types());
    for (JobId j = 0; j < a.num_jobs(); ++j) {
      EXPECT_EQ(a.job_type(j), b.job_type(j));
    }
  }
  ASSERT_EQ(a.has_cost_model(), b.has_cost_model());
  if (a.has_cost_model()) {
    EXPECT_EQ(a.cost_model(), b.cost_model());  // Bitwise, per-field.
  }
}

TEST(InstanceIo, RoundTripUnrelated) {
  const Instance original = gen::uniform_unrelated(4, 9, 1.0, 100.0, 3);
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
}

TEST(InstanceIo, RoundTripClusteredWithScales) {
  const Instance original = gen::related_uniform(5, 6, 1.0, 10.0, 0.5, 2.0, 4);
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
}

TEST(InstanceIo, RoundTripPreservesJobTypes) {
  const Instance original = gen::typed_uniform(3, 12, 4, 1.0, 9.0, 5);
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
}

TEST(InstanceIo, RoundTripExactDoubleValues) {
  // max_digits10 precision: values must round-trip bit-exactly.
  const Instance original =
      Instance::identical(2, {0.1, 1.0 / 3.0, 1e-17 + 1.0});
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  for (JobId j = 0; j < 3; ++j) {
    EXPECT_EQ(original.cost(0, j), loaded.cost(0, j));
  }
}

// Regression: these degenerate shapes used to die inside the Instance
// cache rebuild on load (empty cost rows / groups with no machines).
TEST(InstanceIo, RoundTripZeroJobs) {
  const Instance original = Instance::identical(3, {});
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
  EXPECT_EQ(loaded.num_jobs(), 0u);
}

TEST(InstanceIo, RoundTripSingleMachine) {
  const Instance original = Instance::identical(1, {3.0, 1.0, 4.0});
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
  EXPECT_EQ(loaded.num_machines(), 1u);
}

TEST(InstanceIo, RoundTripEmptyGroup) {
  // Two cost rows but every machine in group 0: group 1 exists in the
  // cost matrix yet owns no machine.
  const Instance original({{2.0, 5.0}, {1.0, 1.0}}, {0, 0}, {1.0, 1.0});
  ASSERT_TRUE(original.machines_in_group(1).empty());
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
  EXPECT_TRUE(loaded.machines_in_group(1).empty());
}

// ------------------------------------------------ cost-model persistence

/// One random Dist with full-precision double parameters — the round-trip
/// must survive max_digits10 formatting for every kind.
cost::Dist random_dist(stats::Rng& rng) {
  cost::Dist dist;
  switch (rng.below(4)) {
    case 0:
      dist.kind = cost::DistKind::kDeterministic;
      dist.value = 0.25 + 4.0 * rng.uniform();
      break;
    case 1:
      dist.kind = cost::DistKind::kNormal;
      dist.sigma = rng.uniform();
      break;
    case 2:
      dist.kind = cost::DistKind::kLognormal;
      dist.sigma = 1.5 * rng.uniform();
      break;
    default:
      dist.kind = cost::DistKind::kPareto;
      dist.alpha = 1.1 + 2.0 * rng.uniform();
      dist.lo = 0.1 + rng.uniform();
      dist.hi = dist.lo * (1.0 + 9.0 * rng.uniform());
      break;
  }
  return dist;
}

TEST(InstanceIo, CostModelRoundTripFuzz) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    stats::Rng rng = stats::Rng::stream(0xC057, seed);
    Instance original =
        gen::uniform_unrelated(2 + seed % 4, 3 + seed % 9, 1.0, 50.0, seed);
    std::vector<cost::Dist> dists(original.num_jobs());
    for (auto& dist : dists) dist = random_dist(rng);
    original.set_cost_model(cost::CostModel(std::move(dists)));
    std::stringstream buffer;
    save_instance(original, buffer);
    const Instance loaded = load_instance(buffer);
    expect_instances_equal(original, loaded);
  }
}

TEST(InstanceIo, CostModelRoundTripWithJobTypes) {
  // types and costmodel are both optional sections; when both are present
  // they must coexist (types first, then costmodel, then costs).
  Instance original = gen::typed_uniform(3, 12, 4, 1.0, 9.0, 5);
  original.set_cost_model(cost::CostModel(std::vector<cost::Dist>(
      original.num_jobs(), cost::parse_dist("normal:0.25"))));
  std::stringstream buffer;
  save_instance(original, buffer);
  const Instance loaded = load_instance(buffer);
  expect_instances_equal(original, loaded);
}

TEST(InstanceIo, AbsentCostModelStaysAbsent) {
  const Instance original = gen::uniform_unrelated(3, 7, 1.0, 10.0, 11);
  std::stringstream buffer;
  save_instance(original, buffer);
  EXPECT_EQ(buffer.str().find("costmodel"), std::string::npos);
  EXPECT_FALSE(load_instance(buffer).has_cost_model());
}

/// Replaces the first costmodel spec of a saved instance with `spec`.
std::string with_first_costmodel_spec(const Instance& instance,
                                      const std::string& spec) {
  std::stringstream buffer;
  save_instance(instance, buffer);
  std::string text = buffer.str();
  const std::string tag = "costmodel ";
  const std::size_t at = text.find(tag) + tag.size();
  const std::size_t end = text.find(' ', at);
  return text.substr(0, at) + spec + text.substr(end);
}

TEST(InstanceIo, RejectsCostModelErrorsNamingJobAndField) {
  Instance original = gen::uniform_unrelated(2, 4, 1.0, 10.0, 13);
  original.set_cost_model(cost::CostModel(
      std::vector<cost::Dist>(original.num_jobs(), cost::Dist{})));
  const std::vector<std::pair<std::string, std::string>> bad = {
      {"gamma:2", "unknown distribution 'gamma'"},
      {"pareto:2,1", "pareto expects 3 parameters alpha,lo,hi"},
      {"normal:-0.5", "normal.sigma"},
      {"pareto:2,3,2", "pareto.hi"}};
  for (const auto& [spec, needle] : bad) {
    std::stringstream corrupted(with_first_costmodel_spec(original, spec));
    try {
      static_cast<void>(load_instance(corrupted));
      FAIL() << spec << ": expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("costmodel entry for job 0"), std::string::npos)
          << spec << " -> " << what;
      EXPECT_NE(what.find(needle), std::string::npos) << spec << " -> "
                                                      << what;
    }
  }
}

TEST(InstanceIo, RejectsTruncatedCostModelSection) {
  Instance original = gen::uniform_unrelated(2, 4, 1.0, 10.0, 13);
  original.set_cost_model(cost::CostModel(
      std::vector<cost::Dist>(original.num_jobs(), cost::Dist{})));
  std::stringstream buffer;
  save_instance(original, buffer);
  std::string text = buffer.str();
  text.resize(text.find("costmodel ") + std::string("costmodel det:1").size());
  std::stringstream truncated(text);
  EXPECT_THROW(static_cast<void>(load_instance(truncated)),
               std::runtime_error);
}

TEST(InstanceIo, RejectsCorruptHeader) {
  std::stringstream buffer("not-an-instance v1\n");
  EXPECT_THROW(load_instance(buffer), std::runtime_error);
}

TEST(InstanceIo, RejectsTruncatedFile) {
  const Instance original = gen::uniform_unrelated(2, 3, 1.0, 5.0, 6);
  std::stringstream buffer;
  save_instance(original, buffer);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(load_instance(half), std::runtime_error);
}

TEST(AssignmentIo, RoundTripComplete) {
  const Instance inst = gen::uniform_unrelated(3, 8, 1.0, 5.0, 7);
  const Assignment original = gen::random_assignment(inst, 8);
  std::stringstream buffer;
  save_assignment(original, buffer);
  const Assignment loaded = load_assignment(buffer);
  EXPECT_EQ(original, loaded);
}

TEST(AssignmentIo, RoundTripPartial) {
  Assignment original(4);
  original.assign(1, 2);
  original.assign(3, 0);
  std::stringstream buffer;
  save_assignment(original, buffer);
  const Assignment loaded = load_assignment(buffer);
  EXPECT_EQ(original, loaded);
  EXPECT_FALSE(loaded.is_assigned(0));
  EXPECT_EQ(loaded.machine_of(1), 2u);
}

TEST(InstanceIo, FileRoundTrip) {
  const Instance original = gen::two_cluster_uniform(2, 3, 6, 1.0, 50.0, 9);
  const std::string path = ::testing::TempDir() + "/dlb_io_test.inst";
  save_instance_file(original, path);
  const Instance loaded = load_instance_file(path);
  expect_instances_equal(original, loaded);
}

TEST(InstanceIo, FileOpenFailureThrows) {
  EXPECT_THROW(load_instance_file("/nonexistent/dir/foo.inst"),
               std::runtime_error);
  const Instance inst = Instance::identical(1, {1.0});
  EXPECT_THROW(save_instance_file(inst, "/nonexistent/dir/foo.inst"),
               std::runtime_error);
}

}  // namespace
}  // namespace dlb::io
