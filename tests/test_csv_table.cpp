#include "stats/csv.hpp"
#include "stats/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace dlb::stats {
namespace {

TEST(CsvWriter, PlainRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.row({"1", "2"});
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"has,comma", "has\"quote", "plain"});
  EXPECT_EQ(out.str(), "\"has,comma\",\"has\"\"quote\",plain\n");
}

TEST(CsvWriter, RejectsColumnMismatch) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  EXPECT_THROW(csv.row({"only-one"}), std::invalid_argument);
}

TEST(CsvWriter, RejectsDoubleHeader) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a"});
  EXPECT_THROW(csv.header({"b"}), std::logic_error);
}

TEST(CsvWriter, NumRoundTripsDoubles) {
  EXPECT_EQ(CsvWriter::num(1.5), "1.5");
  EXPECT_EQ(CsvWriter::num(std::size_t{42}), "42");
  // to_chars shortest representation round-trips.
  const std::string s = CsvWriter::num(0.1);
  EXPECT_DOUBLE_EQ(std::stod(s), 0.1);
}

TEST(TablePrinter, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  // Every data line has the same length (padded).
  std::istringstream lines(text);
  std::string line;
  std::getline(lines, line);
  const std::size_t width = line.size();
  std::getline(lines, line);  // separator
  EXPECT_EQ(line.size(), width);
}

TEST(TablePrinter, RejectsBadShape) {
  EXPECT_THROW(TablePrinter({}), std::invalid_argument);
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"just-one"}), std::invalid_argument);
}

TEST(TablePrinter, FixedFormatsPrecision) {
  EXPECT_EQ(TablePrinter::fixed(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::fixed(2.0, 3), "2.000");
}

}  // namespace
}  // namespace dlb::stats
