#include "dist/convergence.hpp"

#include <gtest/gtest.h>

#include "core/generators.hpp"
#include "dist/dlb2c.hpp"
#include "pairwise/basic_greedy.hpp"

namespace dlb::dist {
namespace {

TEST(SweepAllPairs, ZeroChangesOnStableSchedule) {
  // 2 identical machines, 2 equal jobs, one each: already balanced.
  const Instance inst = Instance::identical(2, {3.0, 3.0});
  Schedule s(inst);
  s.assign(0, 0);
  s.assign(1, 1);
  const pairwise::BasicGreedyKernel kernel;
  EXPECT_EQ(sweep_all_pairs(s, kernel), 0u);
  EXPECT_TRUE(is_stable(s, kernel));
}

TEST(SweepAllPairs, FixesAnImbalancedSchedule) {
  const Instance inst = Instance::identical(2, {3.0, 3.0});
  Schedule s(inst, Assignment::all_on(2, 0));
  const pairwise::BasicGreedyKernel kernel;
  EXPECT_GT(sweep_all_pairs(s, kernel), 0u);
  EXPECT_DOUBLE_EQ(s.makespan(), 3.0);
}

TEST(IsStable, DoesNotMutate) {
  const Instance inst = Instance::identical(3, std::vector<Cost>(7, 1.0));
  Schedule s(inst, Assignment::all_on(7, 0));
  const auto fingerprint = s.fingerprint();
  const pairwise::BasicGreedyKernel kernel;
  EXPECT_FALSE(is_stable(s, kernel));
  EXPECT_EQ(s.fingerprint(), fingerprint);
}

TEST(RunToStability, ConvergesOnSingleType) {
  const Instance inst = Instance::identical(4, std::vector<Cost>(12, 2.0));
  Schedule s(inst, Assignment::all_on(12, 0));
  const pairwise::BasicGreedyKernel kernel;
  EXPECT_TRUE(run_to_stability(s, kernel, 50));
  // Lemma 4: the stable distribution of one job type is optimal: 3 each.
  EXPECT_DOUBLE_EQ(s.makespan(), 6.0);
}

TEST(RunToStability, AlreadyStableScheduleConvergesInOneSweep) {
  // Early edge: the very first sweep finds nothing to do and must report
  // convergence without touching the schedule.
  const Instance inst = Instance::identical(2, {3.0, 3.0});
  Schedule s(inst);
  s.assign(0, 0);
  s.assign(1, 1);
  const auto fingerprint = s.fingerprint();
  EXPECT_TRUE(run_to_stability(s, pairwise::BasicGreedyKernel{}, 1));
  EXPECT_EQ(s.fingerprint(), fingerprint);
}

TEST(RunToStability, ZeroSweepBudgetStillCertifiesAStableStart) {
  // Late edge: with no mutating sweeps allowed, the final non-mutating
  // certification check still recognises an already-stable schedule.
  const Instance inst = Instance::identical(2, {3.0, 3.0});
  Schedule s(inst);
  s.assign(0, 0);
  s.assign(1, 1);
  const auto fingerprint = s.fingerprint();
  EXPECT_TRUE(run_to_stability(s, pairwise::BasicGreedyKernel{}, 0));
  EXPECT_EQ(s.fingerprint(), fingerprint);
}

TEST(RunToStability, ZeroSweepBudgetOnAnUnbalancedStartReportsFalse) {
  // ...whereas an unstable start must neither be certified nor mutated
  // (the certification sweep works on a copy).
  const Instance inst = Instance::identical(3, std::vector<Cost>(9, 1.0));
  Schedule s(inst, Assignment::all_on(9, 0));
  const auto fingerprint = s.fingerprint();
  EXPECT_FALSE(run_to_stability(s, pairwise::BasicGreedyKernel{}, 0));
  EXPECT_EQ(s.fingerprint(), fingerprint);
}

TEST(ExploreReachable, SingleStateBudgetStillClassifiesTheStart) {
  // max_states = 1: only the start state is visited. If it is stable the
  // closure is exhausted; either way the result must stay honest.
  const Instance inst = Instance::identical(2, {1.0, 1.0});
  Assignment balanced(2);
  balanced.assign(0, 0);
  balanced.assign(1, 1);
  const ReachabilityResult r = explore_reachable(
      inst, balanced, pairwise::BasicGreedyKernel{}, /*max_states=*/1);
  EXPECT_TRUE(r.found_stable);
  EXPECT_EQ(r.states_explored, 1u);
}

TEST(ExploreReachable, FindsStableStateOnEasyInstance) {
  const Instance inst = Instance::identical(2, {1.0, 1.0});
  const ReachabilityResult r = explore_reachable(
      inst, Assignment::all_on(2, 0), pairwise::BasicGreedyKernel{}, 1000);
  EXPECT_TRUE(r.found_stable);
  EXPECT_FALSE(r.certified_nonconvergent());
}

TEST(ExploreReachable, TruncationIsReportedHonestly) {
  const Instance inst = gen::two_cluster_uniform(2, 2, 8, 1.0, 9.0, 3);
  const ReachabilityResult r =
      explore_reachable(inst, gen::random_assignment(inst, 4),
                        Dlb2cKernel{}, /*max_states=*/2);
  // With a 2-state budget we can neither exhaust nor (likely) certify.
  EXPECT_FALSE(r.exhausted);
  EXPECT_FALSE(r.certified_nonconvergent());
}

TEST(FindNonconvergentCase, ProducesACertifiedWitness) {
  // Proposition 8: DLB2C need not converge. The seeded search must find a
  // small two-cluster instance whose reachable closure has no stable state.
  const Dlb2cKernel kernel;
  const auto witness = find_nonconvergent_case(
      kernel, /*m1=*/2, /*m2=*/1, /*jobs=*/5, /*cost_hi=*/6,
      /*attempts=*/400, /*seed=*/2015);
  ASSERT_TRUE(witness.has_value()) << "no witness found; Proposition 8 "
                                      "reproduction would fail";
  // Re-verify the certificate independently.
  const ReachabilityResult r = explore_reachable(
      witness->instance, witness->initial, kernel, 20'000);
  EXPECT_TRUE(r.certified_nonconvergent());
  EXPECT_EQ(r.states_explored, witness->closure_size);
}

TEST(ExploreReachable, StableMeansSweepAgrees) {
  // Cross-check the two stability notions on a tiny instance.
  const Instance inst = Instance::clustered({1, 1}, {{2.0, 3.0}, {3.0, 2.0}});
  Assignment a(2);
  a.assign(0, 0);
  a.assign(1, 1);
  const Dlb2cKernel kernel;
  Schedule s(inst, a);
  const bool stable_by_sweep = is_stable(s, kernel);
  const ReachabilityResult r = explore_reachable(inst, a, kernel, 1000);
  if (stable_by_sweep) {
    EXPECT_TRUE(r.found_stable);
    EXPECT_EQ(r.states_explored, 1u);
  }
}

}  // namespace
}  // namespace dlb::dist
