// InstanceStore and the `.dlbi` binary format: heap-vs-mapped equality of
// every Instance accessor, lossless round-trips (including job types, cost
// models, and initial assignments), the unified load_instance() format
// auto-detection with its diagnostic error message, and corruption
// rejection. The fuzz section drives every check:: regime through
// text -> binary -> mapped -> text and demands byte-equal text back — the
// strongest form of "nothing is lost or perturbed by the binary format".

#include "core/instance_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/case_gen.hpp"
#include "core/cost_model.hpp"
#include "core/generators.hpp"
#include "core/instance.hpp"
#include "core/instance_io.hpp"

namespace dlb::core {
namespace {

/// A unique temp path removed on scope exit.
class TempFile {
 public:
  explicit TempFile(const std::string& tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("dlb_test_store_" + std::to_string(::getpid()) + "_" + tag))
                .string();
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every observable quantity of the two instances, bit for bit. EXPECT_EQ
/// on doubles is exact equality — that is the point: the binary format
/// stores the IEEE-754 bits the heap instance holds.
void expect_bitwise_equal(const Instance& a, const Instance& b) {
  ASSERT_EQ(a.num_machines(), b.num_machines());
  ASSERT_EQ(a.num_groups(), b.num_groups());
  ASSERT_EQ(a.num_jobs(), b.num_jobs());
  EXPECT_EQ(a.unit_scales(), b.unit_scales());
  EXPECT_EQ(a.max_cost(), b.max_cost());
  for (MachineId i = 0; i < a.num_machines(); ++i) {
    EXPECT_EQ(a.group_of(i), b.group_of(i)) << "machine " << i;
    EXPECT_EQ(a.scale(i), b.scale(i)) << "machine " << i;
  }
  for (GroupId g = 0; g < a.num_groups(); ++g) {
    for (JobId j = 0; j < a.num_jobs(); ++j) {
      EXPECT_EQ(a.group_cost(g, j), b.group_cost(g, j))
          << "group " << g << " job " << j;
    }
  }
  ASSERT_EQ(a.has_job_types(), b.has_job_types());
  if (a.has_job_types()) {
    ASSERT_EQ(a.num_job_types(), b.num_job_types());
    for (JobId j = 0; j < a.num_jobs(); ++j) {
      EXPECT_EQ(a.job_type(j), b.job_type(j)) << "job " << j;
    }
  }
  ASSERT_EQ(a.has_cost_model(), b.has_cost_model());
  if (a.has_cost_model()) {
    for (JobId j = 0; j < a.num_jobs(); ++j) {
      EXPECT_EQ(a.cost_model().dist(j), b.cost_model().dist(j))
          << "job " << j;
    }
  }
}

Instance sample_instance() {
  return gen::two_cluster_uniform(4, 3, 20, 1.0, 100.0, 7);
}

TEST(InstanceStore, FromInstanceIsHeapBacked) {
  const InstanceStore store = InstanceStore::from_instance(sample_instance());
  EXPECT_EQ(store.kind(), StorageKind::kHeap);
  EXPECT_TRUE(store.path().empty());
  EXPECT_EQ(store.mapped_bytes(), 0u);
  EXPECT_FALSE(store.has_initial_assignment());
  EXPECT_THROW((void)store.initial_assignment(), std::runtime_error);
  EXPECT_FALSE(store.instance().is_view());
}

TEST(InstanceStore, MappedStoreIsABorrowedViewWithEqualBits) {
  const Instance original = sample_instance();
  TempFile file("mapped.dlbi");
  save_dlbi(original, file.path());

  const InstanceStore store = InstanceStore::open_mapped(file.path());
  EXPECT_EQ(store.kind(), StorageKind::kMapped);
  EXPECT_EQ(store.path(), file.path());
  EXPECT_GT(store.mapped_bytes(), 0u);
  EXPECT_TRUE(store.instance().is_view());
  expect_bitwise_equal(original, store.instance());

  // A copy of a borrowed instance is another view, not a detach.
  const Instance copy = store.instance();
  EXPECT_TRUE(copy.is_view());
  expect_bitwise_equal(original, copy);
}

TEST(InstanceStore, MovingTheStoreKeepsViewsValid) {
  const Instance original = sample_instance();
  TempFile file("moved.dlbi");
  save_dlbi(original, file.path());

  InstanceStore store = InstanceStore::open_mapped(file.path());
  const Instance& view = store.instance();
  const InstanceStore moved = std::move(store);
  expect_bitwise_equal(original, view);  // mapping address is stable
  expect_bitwise_equal(original, moved.instance());
}

TEST(InstanceStore, AutoDetectionLoadsBothFormats) {
  const Instance original = sample_instance();
  TempFile text("auto.inst");
  TempFile binary("auto.dlbi");
  io::save_instance_file(original, text.path());
  save_dlbi(original, binary.path());

  const InstanceStore from_text = load_instance(text.path());
  EXPECT_EQ(from_text.kind(), StorageKind::kHeap);
  expect_bitwise_equal(original, from_text.instance());

  const InstanceStore from_binary = load_instance(binary.path());
  EXPECT_EQ(from_binary.kind(), StorageKind::kMapped);
  expect_bitwise_equal(original, from_binary.instance());
}

TEST(InstanceStore, SaveInstanceAutoPicksFormatByExtension) {
  const Instance original = sample_instance();
  TempFile binary("ext.dlbi");
  TempFile text("ext.inst");
  save_instance_auto(original, binary.path());
  save_instance_auto(original, text.path());
  EXPECT_EQ(load_instance(binary.path()).kind(), StorageKind::kMapped);
  EXPECT_EQ(load_instance(text.path()).kind(), StorageKind::kHeap);
}

TEST(InstanceStore, InitialAssignmentRoundTripsIncludingUnassigned) {
  const Instance original = sample_instance();
  Assignment initial = gen::random_assignment(original, 11);
  initial.unassign(3);

  TempFile file("assigned.dlbi");
  save_dlbi(original, file.path(), &initial);
  const InstanceStore store = InstanceStore::open_mapped(file.path());
  ASSERT_TRUE(store.has_initial_assignment());
  const Assignment loaded = store.initial_assignment();
  ASSERT_EQ(loaded.num_jobs(), initial.num_jobs());
  for (JobId j = 0; j < initial.num_jobs(); ++j) {
    EXPECT_EQ(loaded.machine_of(j), initial.machine_of(j)) << "job " << j;
  }
}

TEST(InstanceStore, UnknownFormatErrorNamesDetectedMagicAndValidSet) {
  TempFile file("garbage.xyz");
  {
    std::ofstream out(file.path(), std::ios::binary);
    out << "garbage-file\n1 2\xff";
  }
  try {
    (void)load_instance(file.path());
    FAIL() << "load_instance accepted a garbage file";
  } catch (const std::runtime_error& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("garbage-file"), std::string::npos) << message;
    EXPECT_NE(message.find(std::string(kDlbiMagic)), std::string::npos)
        << message;
    EXPECT_NE(message.find(std::string(kTextMagic)), std::string::npos)
        << message;
  }
}

TEST(InstanceStore, OpenMappedRejectsTruncationVersionAndBadMagic) {
  const Instance original = sample_instance();
  TempFile file("corrupt.dlbi");
  save_dlbi(original, file.path());
  const std::string good = read_file(file.path());

  // Truncated: the header promises more bytes than the file holds.
  {
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(good.data(), 256);
  }
  EXPECT_THROW((void)InstanceStore::open_mapped(file.path()),
               std::runtime_error);

  // Unsupported version (the u32 after the 8-byte magic).
  {
    std::string bad = good;
    bad[8] = '\x7f';
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_THROW((void)InstanceStore::open_mapped(file.path()),
               std::runtime_error);

  // Wrong magic.
  {
    std::string bad = good;
    bad[0] = 'X';
    std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
    out.write(bad.data(), static_cast<std::streamsize>(bad.size()));
  }
  EXPECT_THROW((void)InstanceStore::open_mapped(file.path()),
               std::runtime_error);
}

// ----- fuzz: text -> binary -> mapped -> text over every regime -----
//
// For each check:: regime (including typed, stochastic, and degenerate
// shapes): the binary round-trip must reproduce every bit the text file
// holds, and re-serializing the *mapped view* as text must reproduce the
// original text bytes exactly.

class DlbiRoundTrip : public ::testing::TestWithParam<check::Regime> {};

TEST_P(DlbiRoundTrip, TextBinaryTextIsByteLossless) {
  for (std::uint64_t index = 0; index < 4; ++index) {
    const check::GeneratedCase c = check::make_case(2026, index, GetParam());

    TempFile text("fuzz.inst");
    TempFile binary("fuzz.dlbi");
    io::save_instance_file(c.instance, text.path());
    save_dlbi(c.instance, binary.path());

    const InstanceStore store = load_instance(binary.path());
    ASSERT_EQ(store.kind(), StorageKind::kMapped) << c.name;
    expect_bitwise_equal(c.instance, store.instance());

    TempFile again("fuzz2.inst");
    io::save_instance_file(store.instance(), again.path());
    EXPECT_EQ(read_file(text.path()), read_file(again.path())) << c.name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRegimes, DlbiRoundTrip,
    ::testing::Values(
        check::Regime::kIdentical, check::Regime::kRelated,
        check::Regime::kTwoCluster, check::Regime::kMultiCluster,
        check::Regime::kUnrelated, check::Regime::kTyped,
        check::Regime::kSingleType, check::Regime::kExtremeRatio,
        check::Regime::kDegenerate, check::Regime::kStochasticNormal,
        check::Regime::kStochasticLognormal,
        check::Regime::kStochasticPareto),
    [](const ::testing::TestParamInfo<check::Regime>& param_info) {
      std::string name = check::regime_name(param_info.param);
      for (char& ch : name) {
        if (ch == '-' || ch == '/') ch = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dlb::core
